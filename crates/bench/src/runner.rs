//! Shared experiment plumbing: workload construction, monitored runs,
//! metric evaluation, and the `IncRep` comparison run.

use std::time::Duration;

use certainfix_cfd::IncRepConfig;
use certainfix_core::{
    evaluate_changes, evaluate_rounds, merge_round_series, BatchRepairEngine, CertainFixConfig,
    ChangeCounts, FixOutcome, InitialRegion, MonitorStats, RepairOptions, RoundMetrics, Schedule,
    SessionReport, SimulatedUser, TupleEval, WorkerReport,
};
use certainfix_datagen::{Dataset, Dblp, DirtyConfig, Hosp, Workload};
use certainfix_relation::Tuple;

use crate::args::Args;

/// How a run feeds tuples to the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Ingest {
    /// The whole generated stream as one
    /// [`RepairSession::push_batch`](certainfix_core::RepairSession::push_batch)
    /// call (the PR 2/3 batch path).
    #[default]
    Batch,
    /// Backpressured streaming: a producer thread feeds the stream in
    /// batches through a bounded [`ChannelSource`](certainfix_core::ChannelSource), and the session
    /// drains it — the paper's point-of-entry monitoring shape. For
    /// plain `CertainFix` with the caches off the merged metrics are
    /// bit-identical to [`Ingest::Batch`].
    Stream,
}

impl Ingest {
    /// Parse a CLI-style mode name (`"batch"` / `"stream"`).
    pub fn parse(s: &str) -> Option<Ingest> {
        match s {
            "batch" => Some(Ingest::Batch),
            "stream" => Some(Ingest::Stream),
            _ => None,
        }
    }

    /// The CLI-style mode name.
    pub fn name(self) -> &'static str {
        match self {
            Ingest::Batch => "batch",
            Ingest::Stream => "stream",
        }
    }
}

/// Which dataset an experiment runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Which {
    /// The hospital workload (19 attrs, 21 eRs).
    Hosp,
    /// The bibliography workload (12 attrs, 16 eRs).
    Dblp,
}

impl Which {
    /// Both workloads, in the paper's order.
    pub const BOTH: [Which; 2] = [Which::Hosp, Which::Dblp];

    /// Lower-case name as used in output rows.
    pub fn name(self) -> &'static str {
        match self {
            Which::Hosp => "hosp",
            Which::Dblp => "dblp",
        }
    }

    /// Build the workload with `dm` master rows.
    pub fn build(self, dm: usize) -> Box<dyn Workload> {
        match self {
            Which::Hosp => Box::new(Hosp::generate(dm)),
            Which::Dblp => Box::new(Dblp::generate(dm)),
        }
    }
}

/// Full experiment configuration (paper defaults unless overridden).
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Master size `|Dm|` (paper default 10K).
    pub dm: usize,
    /// Input tuples `|D|` (paper default 10K; binaries default lower to
    /// keep a full sweep under a minute — use `--inputs` to scale up).
    pub inputs: usize,
    /// Duplicate rate `d%` (paper default 0.30).
    pub d: f64,
    /// Noise rate `n%` (paper default 0.20).
    pub n: f64,
    /// RNG seed.
    pub seed: u64,
    /// Oracle compliance (1.0 = assert every suggested attribute).
    pub compliance: f64,
    /// Use the BDD suggestion cache (`CertainFix+`).
    pub use_bdd: bool,
    /// Which precomputed region seeds round 1.
    pub initial: InitialRegion,
    /// Batch-repair workers (1 = sequential; 0 = one per available
    /// core).
    pub threads: usize,
    /// Scheduling policy for parallel batch repair.
    pub schedule: Schedule,
    /// Pool computed suggestions across workers in the engine's shared
    /// cache.
    pub shared_cache: bool,
    /// Zipf-ish positional hardness skew of the dirty stream
    /// ([`DirtyConfig::skew`]; 0 = the paper's uniform stream).
    pub skew: f64,
    /// Probability a corrupted cell carries an adversarial
    /// high-cardinality free-text payload instead of a typo
    /// ([`DirtyConfig::free_text`]; 0 = the paper's typo model). The
    /// interner-watermark CI leg runs with `--free-text 1`.
    pub free_text: f64,
    /// How the stream reaches the engine (one batch, or backpressured
    /// streaming through a bounded channel).
    pub ingest: Ingest,
    /// Producer batch size for [`Ingest::Stream`] (`0` = a 256-tuple
    /// default, clamped to the stream).
    pub batch: usize,
    /// Channel depth (in-flight batches) for [`Ingest::Stream`].
    pub depth: usize,
    /// Work-stealing chunk size (`--chunk`; 0 = the engine's auto
    /// sizing). A stolen chunk is also the block-probe unit, and
    /// outcomes are bit-identical at every value — the flag exists so
    /// CI can pin different block sizes against each other.
    pub chunk: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            dm: 10_000,
            inputs: 2_000,
            d: 0.30,
            n: 0.20,
            seed: 0xC0FFEE,
            compliance: 1.0,
            use_bdd: true,
            initial: InitialRegion::Best,
            threads: 1,
            schedule: Schedule::Steal,
            shared_cache: true,
            skew: 0.0,
            free_text: 0.0,
            ingest: Ingest::Batch,
            batch: 0,
            depth: 2,
            chunk: 0,
        }
    }
}

impl ExpConfig {
    /// Read overrides from CLI flags; an *invalid value* for an
    /// enumerated flag (`--initial`, `--schedule`, `--shared-cache`)
    /// prints the error to stderr and exits 2, matching the strict
    /// treatment of unknown flag names — a typo'd mode must never
    /// silently run the experiment under the default mode.
    pub fn from_args(args: &Args) -> ExpConfig {
        match Self::try_from_args(args) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// [`from_args`](Self::from_args) without the exit: invalid
    /// enumerated values come back as `Err`.
    pub fn try_from_args(args: &Args) -> Result<ExpConfig, String> {
        let default = ExpConfig::default();
        let threads = match args.usize_or("threads", default.threads) {
            0 => BatchRepairEngine::auto_threads(),
            t => t,
        };
        let initial = match args.str_or("initial", "best") {
            "best" => InitialRegion::Best,
            "median" => InitialRegion::Median,
            other => return Err(format!("invalid --initial `{other}` (best|median)")),
        };
        let schedule = Schedule::parse(args.str_or("schedule", default.schedule.name()))
            .ok_or_else(|| {
                format!(
                    "invalid --schedule `{}` (shard|steal)",
                    args.str_or("schedule", "")
                )
            })?;
        let shared_cache = match args.str_or("shared-cache", "on") {
            "on" => true,
            "off" => false,
            other => return Err(format!("invalid --shared-cache `{other}` (on|off)")),
        };
        let ingest =
            Ingest::parse(args.str_or("ingest", default.ingest.name())).ok_or_else(|| {
                format!(
                    "invalid --ingest `{}` (batch|stream)",
                    args.str_or("ingest", "")
                )
            })?;
        Ok(ExpConfig {
            dm: args.usize_or("dm", default.dm),
            inputs: args.usize_or("inputs", default.inputs),
            d: args.f64_or("d", default.d),
            n: args.f64_or("n", default.n),
            seed: args.u64_or("seed", default.seed),
            compliance: args.f64_or("compliance", default.compliance),
            use_bdd: !args.has("no-bdd"),
            initial,
            threads,
            schedule,
            shared_cache,
            skew: args.f64_or("skew", default.skew),
            free_text: args.f64_or("free-text", default.free_text),
            ingest,
            batch: args.usize_or("batch", default.batch),
            depth: args.usize_or("depth", default.depth),
            chunk: args.usize_or("chunk", default.chunk),
        })
    }

    /// The producer batch size [`Ingest::Stream`] uses for a stream of
    /// `inputs` tuples (`--batch 0` = a 256-tuple default, clamped).
    pub fn stream_batch(&self, inputs: usize) -> usize {
        match self.batch {
            0 => 256.min(inputs).max(1),
            b => b.min(inputs.max(1)),
        }
    }

    /// The dirty-data generator knobs this config implies.
    pub fn dirty_config(&self) -> DirtyConfig {
        DirtyConfig {
            duplicate_rate: self.d,
            noise_rate: self.n,
            input_size: self.inputs,
            seed: self.seed,
            skew: self.skew,
            free_text: self.free_text,
            ..DirtyConfig::default()
        }
    }

    /// The engine knobs this config implies. `threads` passes through
    /// verbatim — the engine itself resolves 0 to one worker per core.
    pub fn repair_options(&self) -> RepairOptions {
        RepairOptions {
            threads: self.threads,
            schedule: self.schedule,
            shared_cache: self.shared_cache,
            chunk: self.chunk,
        }
    }
}

/// Result of one monitored run.
pub struct RunResult {
    /// Per-round cumulative metrics (rounds `1..=max_rounds`),
    /// evaluated shard-by-shard and merged.
    pub metrics: Vec<RoundMetrics>,
    /// Merged monitor statistics (timing, rounds, certain count,
    /// interner watermark). With `threads > 1`, `elapsed` sums worker
    /// time across shards; `wall` is the batch's wall clock.
    pub stats: MonitorStats,
    /// Merged BDD cache statistics.
    pub bdd: certainfix_core::bdd::BddStats,
    /// Wall-clock time of the run: the repair batch's wall for the
    /// batch path, the end-to-end streaming duration (source stalls
    /// included) for [`run_stream`].
    pub wall: Duration,
    /// Per-worker breakdown, with ranges in *global* stream positions
    /// (one entry when sequential; one entry per `(batch, worker)`
    /// when streamed).
    pub workers: Vec<WorkerReport>,
    /// The dataset used (for follow-up comparisons on the same data).
    pub dataset: Dataset,
    /// Raw per-tuple outcomes.
    pub outcomes: Vec<FixOutcome>,
}

impl RunResult {
    /// The maximum number of interaction rounds any tuple needed.
    pub fn max_rounds(&self) -> usize {
        self.outcomes
            .iter()
            .map(|o| o.rounds.len())
            .max()
            .unwrap_or(0)
    }

    /// Metric row for round `k` (clamped to the last materialized row).
    pub fn at_round(&self, k: usize) -> RoundMetrics {
        let idx = k.clamp(1, self.metrics.len()).saturating_sub(1);
        self.metrics[idx]
    }
}

/// Build the batch-repair engine for a workload under `cfg`. The
/// compiled rule plan is always the probe layer (the legacy `--plan
/// off` toggle retired with the plan-required reasoning surface; the
/// plain probe path survives only as the determinism oracle in tests).
pub fn build_engine(workload: &dyn Workload, cfg: &ExpConfig) -> BatchRepairEngine {
    BatchRepairEngine::new(certainfix_core::RepairContext::with_config(
        workload.rules().clone(),
        workload.master().clone(),
        cfg.use_bdd,
        cfg.initial,
        CertainFixConfig::default(),
    ))
}

/// Session `s`'s generator knobs for the multi-tenant experiments:
/// size skewed by position (`inputs / (s + 1)`), seed derived from `s`
/// alone — invariant to the total session count, so a session's data
/// (and therefore its deterministic results) never depends on how
/// many other sessions run beside it. Shared by `exp_service` and
/// `exp_net` precisely so their per-session rows are diffable: CI
/// holds the loopback rows bit-identical to the in-process ones
/// (invariant D11).
pub fn session_dirty_config(base: &ExpConfig, s: usize) -> DirtyConfig {
    DirtyConfig {
        input_size: (base.inputs / (s + 1)).max(1),
        seed: base.seed ^ (s as u64 + 1).wrapping_mul(0x9E37_79B9),
        ..base.dirty_config()
    }
}

/// The oracle factory every runner shares: the user for global stream
/// index `i`, seeded from the *dataset's* seed (which
/// [`Dataset::batches`] decorrelates per batch) and `i` only, so
/// results are independent of the worker count, the schedule, the
/// batching, and the position of the batch in a stream. Public so the
/// multi-session `exp_service` binary can hand the same per-index
/// oracles to a [`certainfix_core::RepairService`] stream.
pub fn oracle_factory(
    dataset: &Dataset,
    compliance: f64,
) -> impl Fn(usize) -> SimulatedUser + Sync + '_ {
    let seed = dataset.config.seed;
    move |i| {
        let dt = &dataset.inputs[i];
        if compliance >= 1.0 {
            SimulatedUser::new(dt.clean.clone())
        } else {
            SimulatedUser::with_compliance(dt.clean.clone(), compliance, seed ^ i as u64)
        }
    }
}

/// Fold a [`SessionReport`] into a [`RunResult`]: evaluate metric rows
/// per `(batch, worker)` slice and merge them (the merge sums raw
/// counts, so the rows are independent of how the session and the
/// scheduler partitioned the stream), concatenate outcomes in stream
/// order, and shift worker ranges to global stream positions. Public
/// so `exp_service` can fold each multiplexed session's report the
/// same way the single-session runners do.
pub fn fold_session(report: SessionReport, dataset: Dataset, report_rounds: usize) -> RunResult {
    let report_rounds = report_rounds.max(1);
    let mut metrics: Option<Vec<RoundMetrics>> = None;
    let mut workers: Vec<WorkerReport> = Vec::new();
    for (offset, batch) in report.batches_with_offsets() {
        for worker in &batch.workers {
            let evals: Vec<TupleEval> = worker
                .indexes()
                .map(|i| TupleEval {
                    outcome: &batch.outcomes[i],
                    dirty: &dataset.inputs[offset + i].dirty,
                    clean: &dataset.inputs[offset + i].clean,
                })
                .collect();
            let m = evaluate_rounds(&evals, report_rounds);
            match &mut metrics {
                None => metrics = Some(m),
                Some(acc) => merge_round_series(acc, &m),
            }
            workers.push(WorkerReport {
                worker: worker.worker,
                ranges: worker
                    .ranges
                    .iter()
                    .map(|r| r.start + offset..r.end + offset)
                    .collect(),
                stats: worker.stats,
                bdd: worker.bdd,
            });
        }
    }
    let (stats, bdd, wall) = (report.stats, report.bdd, report.wall);
    let outcomes = report.into_outcomes();
    RunResult {
        metrics: metrics.unwrap_or_else(|| evaluate_rounds(&[], report_rounds)),
        stats,
        bdd,
        wall,
        workers,
        dataset,
        outcomes,
    }
}

/// Repair one already-generated batch with `cfg.threads` workers under
/// `cfg`'s schedule and cache knobs — a thin shim over a one-batch
/// [`RepairSession`](certainfix_core::RepairSession) borrowed from the
/// engine — and evaluate per-worker metrics, merged into whole-batch
/// rows.
pub fn run_batch(
    engine: &BatchRepairEngine,
    dataset: Dataset,
    cfg: &ExpConfig,
    report_rounds: usize,
) -> RunResult {
    let dirty: Vec<Tuple> = dataset.inputs.iter().map(|dt| dt.dirty.clone()).collect();
    let mut session = engine.session_opts(cfg.repair_options());
    session.push_batch(&dirty, oracle_factory(&dataset, cfg.compliance));
    fold_session(session.finish(), dataset, report_rounds)
}

/// Stream an already-generated dataset through a bounded channel
/// ([`RepairSession::stream_slice`](certainfix_core::RepairSession::stream_slice)):
/// a producer thread sends the dirty tuples in `cfg.stream_batch`-sized
/// batches through a [`ChannelSource`](certainfix_core::ChannelSource) of `cfg.depth` in-flight
/// batches, and a borrowed session drains it. The tuple sequence and
/// the per-index oracles are exactly those of [`run_batch`], so for
/// plain `CertainFix` with the caches off the outcomes and merged
/// metrics are bit-identical to the batch path. Unlike [`run_batch`],
/// the result's `wall` is the *end-to-end* streaming duration
/// (producer start to drain finish, source stalls included) — that is
/// what a backpressure sweep must divide throughput by.
pub fn run_stream(
    engine: &BatchRepairEngine,
    dataset: Dataset,
    cfg: &ExpConfig,
    report_rounds: usize,
) -> RunResult {
    let dirty: Vec<Tuple> = dataset.inputs.iter().map(|dt| dt.dirty.clone()).collect();
    let batch = cfg.stream_batch(dirty.len());
    let started = std::time::Instant::now();
    let mut session = engine.session_opts(cfg.repair_options());
    session.stream_slice(
        &dirty,
        batch,
        cfg.depth,
        oracle_factory(&dataset, cfg.compliance),
    );
    let end_to_end = started.elapsed();
    let mut result = fold_session(session.finish(), dataset, report_rounds);
    result.wall = end_to_end;
    result
}

/// Run the monitored pipeline on `workload` under `cfg`, evaluating
/// metrics for up to `report_rounds` rounds, feeding the engine
/// through `cfg.ingest` (one batch, or backpressured streaming).
/// `cfg.threads > 1` repairs the stream with that many workers (under
/// `cfg.schedule`); for plain `CertainFix` with the caches off, the
/// outcomes and merged metrics are the same whichever ingest path,
/// worker count, or schedule is chosen.
pub fn run_monitored(workload: &dyn Workload, cfg: &ExpConfig, report_rounds: usize) -> RunResult {
    let engine = build_engine(workload, cfg);
    let dataset = Dataset::generate(workload, &cfg.dirty_config());
    match cfg.ingest {
        Ingest::Batch => run_batch(&engine, dataset, cfg, report_rounds),
        Ingest::Stream => run_stream(&engine, dataset, cfg, report_rounds),
    }
}

/// Run the `IncRep` baseline on the same dirty data and evaluate its
/// attribute-level counts. Returns the counts and the elapsed time.
///
/// Since the standalone `increp` entry point retired, the baseline
/// runs through the same engine surface as everything else: a
/// [`Workload::Cfd`](certainfix_core::Workload) context repaired batch-wise (non-interactive, so
/// the oracle is never consulted and the per-tuple outcomes are the
/// cost-based CFD repairs).
pub fn run_increp(workload: &dyn Workload, dataset: &Dataset) -> (ChangeCounts, Duration) {
    let engine = BatchRepairEngine::new(certainfix_core::RepairContext::with_workload(
        workload.rules().clone(),
        workload.master().clone(),
        false,
        InitialRegion::Best,
        CertainFixConfig::default(),
        certainfix_core::Workload::Cfd(IncRepConfig::default()),
    ));
    let dirty: Vec<Tuple> = dataset.inputs.iter().map(|dt| dt.dirty.clone()).collect();
    let started = std::time::Instant::now();
    let report = engine.repair_opts(&dirty, &RepairOptions::default(), |i| {
        SimulatedUser::new(dataset.inputs[i].clean.clone())
    });
    let elapsed = started.elapsed();
    let counts = evaluate_changes(
        dataset
            .inputs
            .iter()
            .zip(&report.outcomes)
            .map(|(dt, o)| (&dt.dirty, &o.tuple, &dt.clean)),
    );
    (counts, elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ExpConfig {
        ExpConfig {
            dm: 300,
            inputs: 80,
            ..Default::default()
        }
    }

    #[test]
    fn monitored_run_produces_metrics() {
        let w = Which::Hosp.build(small().dm);
        let result = run_monitored(w.as_ref(), &small(), 4);
        assert_eq!(result.metrics.len(), 4);
        // recall_t(1) ≈ d and is non-decreasing in k
        let r1 = result.metrics[0].recall_t;
        assert!(r1 > 0.1 && r1 < 0.5, "recall_t(1) = {r1}");
        for w in result.metrics.windows(2) {
            assert!(w[1].recall_t >= w[0].recall_t);
            assert!(w[1].recall_a >= w[0].recall_a);
        }
        // certain fixes are precise by construction
        assert_eq!(result.metrics.last().unwrap().precision_a, 1.0);
        assert!(result.max_rounds() >= 1);
        assert_eq!(result.at_round(99), *result.metrics.last().unwrap());
    }

    #[test]
    fn increp_comparison_runs() {
        let cfg = small();
        let w = Which::Dblp.build(cfg.dm);
        let result = run_monitored(w.as_ref(), &cfg, 3);
        let (counts, _) = run_increp(w.as_ref(), &result.dataset);
        assert!(counts.erroneous > 0);
        // IncRep changes things but is not fully precise in general
        assert!(counts.precision() <= 1.0);
    }

    #[test]
    fn config_from_args() {
        let args = Args::parse(
            "--dm 123 --inputs 45 --d 0.5 --n 0.1 --no-bdd --initial median --threads 3 \
             --schedule shard --shared-cache off --skew 1.5 --ingest stream --batch 64 --depth 4"
                .split_whitespace()
                .map(String::from),
        );
        let cfg = ExpConfig::from_args(&args);
        assert_eq!(cfg.dm, 123);
        assert_eq!(cfg.inputs, 45);
        assert_eq!(cfg.d, 0.5);
        assert!(!cfg.use_bdd);
        assert_eq!(cfg.initial, InitialRegion::Median);
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.schedule, Schedule::Shard);
        assert!(!cfg.shared_cache);
        assert_eq!(cfg.skew, 1.5);
        assert_eq!(cfg.dirty_config().skew, 1.5);
        assert_eq!(cfg.ingest, Ingest::Stream);
        assert_eq!(cfg.batch, 64);
        assert_eq!(cfg.depth, 4);
        assert_eq!(cfg.stream_batch(1000), 64);
        assert_eq!(cfg.stream_batch(10), 10, "batch clamps to the stream");
    }

    #[test]
    fn stream_batch_defaults_and_parses() {
        let cfg = ExpConfig::default();
        assert_eq!(cfg.ingest, Ingest::Batch);
        assert_eq!(cfg.stream_batch(10_000), 256, "0 means the 256 default");
        assert_eq!(cfg.stream_batch(100), 100);
        assert_eq!(cfg.stream_batch(0), 1, "never a zero batch");
        assert_eq!(Ingest::parse("batch"), Some(Ingest::Batch));
        assert_eq!(Ingest::parse("stream"), Some(Ingest::Stream));
        assert_eq!(Ingest::parse("streaming"), None);
        assert_eq!(Ingest::Stream.name(), "stream");
    }

    #[test]
    fn invalid_enumerated_values_are_rejected() {
        for bad in [
            "--schedule sahrd",
            "--schedule Shard",
            "--shared-cache Off",
            "--shared-cache false",
            "--initial worst",
            "--ingest Stream",
            "--ingest streaming",
        ] {
            let args = Args::parse(bad.split_whitespace().map(String::from));
            let err = ExpConfig::try_from_args(&args).unwrap_err();
            assert!(err.starts_with("invalid --"), "{bad}: {err}");
        }
        // threads 0 passes through repair_options for the engine's
        // own one-worker-per-core resolution
        let cfg = ExpConfig {
            threads: 0,
            ..ExpConfig::default()
        };
        assert_eq!(cfg.repair_options().threads, 0);
    }

    #[test]
    fn config_defaults_to_stealing_with_the_shared_cache() {
        let cfg = ExpConfig::from_args(&Args::parse(std::iter::empty::<String>()));
        assert_eq!(cfg.schedule, Schedule::Steal);
        assert!(cfg.shared_cache);
        assert_eq!(cfg.skew, 0.0);
        let opts = cfg.repair_options();
        assert_eq!(opts.schedule, Schedule::Steal);
        assert!(opts.shared_cache);
        assert_eq!(opts.threads, 1);
    }

    #[test]
    fn threads_zero_resolves_to_available_parallelism() {
        let args = Args::parse("--threads 0".split_whitespace().map(String::from));
        let cfg = ExpConfig::from_args(&args);
        assert!(cfg.threads >= 1);
    }

    #[test]
    fn parallel_run_matches_sequential_metrics() {
        // plain CertainFix with both caches off: the engine's full
        // bit-identical guarantee, in both schedule modes
        let base = ExpConfig {
            use_bdd: false,
            shared_cache: false,
            skew: 0.6,
            ..small()
        };
        let seq = run_monitored(Which::Hosp.build(base.dm).as_ref(), &base, 3);
        for schedule in [Schedule::Shard, Schedule::Steal] {
            let par = run_monitored(
                Which::Hosp.build(base.dm).as_ref(),
                &ExpConfig {
                    threads: 4,
                    schedule,
                    ..base
                },
                3,
            );
            assert_eq!(par.workers.len(), 4);
            assert_eq!(
                seq.metrics, par.metrics,
                "merged rows are bit-identical under {schedule:?}"
            );
            assert_eq!(seq.stats.certain, par.stats.certain);
            assert_eq!(seq.stats.rounds, par.stats.rounds);
            for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
                assert_eq!(a.tuple, b.tuple);
            }
        }
    }

    /// With the `--plan off` toggle retired, every run goes through
    /// the compiled probe layer — the runner must actually charge plan
    /// probes, on both ingest paths.
    #[test]
    fn every_run_probes_the_compiled_plan() {
        let base = ExpConfig {
            use_bdd: false,
            shared_cache: false,
            skew: 1.0,
            threads: 2,
            ..small()
        };
        let run = run_monitored(Which::Hosp.build(base.dm).as_ref(), &base, 3);
        assert!(run.stats.plan_probes > 0, "the plan is the probe layer");
        assert_eq!(run.stats.plan_fallbacks, 0, "hosp keys all plan-covered");
    }

    /// The signature guarantee of the session redesign, exercised at
    /// the runner level: a streamed run (bounded channel, several
    /// batches, several workers) merges to metrics and outcomes
    /// bit-identical to the one-batch path for plain `CertainFix` with
    /// the caches off.
    #[test]
    fn streamed_run_matches_the_batch_path() {
        let base = ExpConfig {
            use_bdd: false,
            shared_cache: false,
            skew: 0.8,
            threads: 2,
            batch: 16,
            depth: 2,
            ..small()
        };
        let batch = run_monitored(
            Which::Hosp.build(base.dm).as_ref(),
            &ExpConfig {
                ingest: Ingest::Batch,
                ..base
            },
            3,
        );
        let stream = run_monitored(
            Which::Hosp.build(base.dm).as_ref(),
            &ExpConfig {
                ingest: Ingest::Stream,
                ..base
            },
            3,
        );
        assert!(stream.workers.len() > batch.workers.len(), "really batched");
        assert_eq!(batch.metrics, stream.metrics, "merged rows bit-identical");
        assert_eq!(batch.stats.tuples, stream.stats.tuples);
        assert_eq!(batch.stats.certain, stream.stats.certain);
        assert_eq!(batch.stats.rounds, stream.stats.rounds);
        assert_eq!(batch.outcomes.len(), stream.outcomes.len());
        for (i, (a, b)) in batch.outcomes.iter().zip(&stream.outcomes).enumerate() {
            assert_eq!(a.tuple, b.tuple, "tuple {i}");
            assert_eq!(a.certain, b.certain, "tuple {i}");
        }
        // streamed worker ranges are global: together they tile the stream
        let mut seen = vec![false; stream.outcomes.len()];
        for w in &stream.workers {
            for r in &w.ranges {
                for i in r.clone() {
                    assert!(!seen[i], "index {i} covered twice");
                    seen[i] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every index covered");
    }

    #[test]
    fn which_builds_both() {
        for which in Which::BOTH {
            let w = which.build(50);
            assert_eq!(w.name(), which.name());
            assert_eq!(w.master().len(), 50);
        }
    }
}
