//! Exp-1(2): the initial suggestion selection.
//!
//! Reproduces the paper's table comparing F-measure when the
//! interaction is seeded with the highest-quality certain region (CRHQ)
//! versus the median-quality one (CRMQ):
//!
//! ```text
//! Dataset   F-measure CRHQ   F-measure CRMQ     (paper: 0.74/0.70 hosp, 0.79/0.69 dblp)
//! ```
//!
//! The shape to reproduce: CRHQ ≥ CRMQ on both datasets — a better
//! initial region lets the rules fix more attributes automatically.
//!
//! Usage: `cargo run --release -p certainfix-bench --bin exp_initial
//!         [--dm N] [--inputs N] [--seed S] [--out file.csv]`

use certainfix_bench::args::{Args, Spec};
use certainfix_bench::runner::{run_monitored, ExpConfig, Which};
use certainfix_bench::table::{f3, Table};
use certainfix_core::InitialRegion;

fn main() {
    let args = Args::from_env_strict(&Spec::exp("exp_initial"));
    let base = ExpConfig::from_args(&args);
    let mut table = Table::new(["dataset", "CRHQ", "CRMQ"]);

    for which in Which::BOTH {
        let w = which.build(base.dm);
        let mut f = [0.0f64; 2];
        for (i, initial) in [InitialRegion::Best, InitialRegion::Median]
            .into_iter()
            .enumerate()
        {
            let cfg = ExpConfig { initial, ..base };
            let result = run_monitored(w.as_ref(), &cfg, 4);
            f[i] = result.at_round(4).f_measure;
        }
        table.row([which.name().to_uppercase(), f3(f[0]), f3(f[1])]);
    }

    println!("Exp-1(2): F-measure with CRHQ vs CRMQ initial suggestions");
    println!(
        "(|Dm| = {}, |D| = {}, d% = {:.0}, n% = {:.0})",
        base.dm,
        base.inputs,
        base.d * 100.0,
        base.n * 100.0
    );
    println!("{}", table.render());
    table
        .maybe_write_csv(args.str_or("out", ""))
        .expect("writing CSV output");
}
