//! Exp-1(1): the effectiveness of certain regions.
//!
//! Reproduces the paper's table comparing the number of attributes in
//! the certain region found by `CompCRegion` (ref.\[20\]) against the greedy
//! `GRegion` baseline:
//!
//! ```text
//! Dataset   CompCRegion   GRegion      (paper: 2/4 for HOSP, 5/9 for DBLP)
//! HOSP      2             4
//! DBLP      5             6
//! ```
//!
//! Usage: `cargo run -p certainfix-bench --bin exp_regions [--dm N] [--out file.csv]`

use certainfix_bench::args::{Args, Spec};
use certainfix_bench::runner::Which;
use certainfix_bench::table::Table;
use certainfix_reasoning::{comp_cregion_in_mode, gregion_in_mode, RegionCatalog};
use certainfix_relation::{AttrId, MasterIndex, Value};

fn main() {
    let args = Args::from_env_strict(&Spec::new("exp_regions").valued(&["dm", "out"]));
    let dm = args.usize_or("dm", 1000);
    let mut table = Table::new(["dataset", "CompCRegion", "GRegion", "CompC Z", "GRegion Z"]);

    for which in Which::BOTH {
        let w = which.build(dm);
        let rules = w.rules();
        let schema = w.schema();
        // The dominant mode: DBLP rules are conditioned on
        // type = 'inproceedings'; HOSP rules are unconditional.
        let mode: Vec<(AttrId, Value)> = match which {
            Which::Hosp => Vec::new(),
            Which::Dblp => vec![(
                schema.attr("type").expect("dblp has a type attribute"),
                Value::str("inproceedings"),
            )],
        };
        let comp = comp_cregion_in_mode(rules, &mode);
        let greedy = gregion_in_mode(rules, &mode);
        table.row([
            which.name().to_uppercase(),
            comp.len().to_string(),
            greedy.len().to_string(),
            schema.render_attrs(&comp),
            schema.render_attrs(&greedy),
        ]);
    }

    println!("Exp-1(1): number of attributes in the derived certain region");
    println!("{}", table.render());

    // The catalog view the framework actually consumes (CRHQ first):
    for which in Which::BOTH {
        let w = which.build(dm);
        let master = MasterIndex::new(w.master().clone());
        let catalog = RegionCatalog::build(w.rules(), &master);
        println!(
            "{} region catalog ({} region(s); CRHQ |Z| = {}):",
            which.name(),
            catalog.len(),
            catalog.best().map(|r| r.z().len()).unwrap_or(0)
        );
        for region in catalog.iter() {
            println!("  {}", region.render(w.schema()));
        }
        println!();
    }

    table
        .maybe_write_csv(args.str_or("out", ""))
        .expect("writing CSV output");
}
