//! Multi-session service sweep: N concurrent tenant streams × thread
//! count × producer batch size on both workloads, multiplexed over one
//! engine by [`RepairService`].
//!
//! Every point builds one service (one compiled plan, one shared
//! cache, one stealing pool) and `--sessions` tenant streams with
//! *skewed* sizes: session `s` carries `inputs / (s + 1)` tuples and a
//! seed derived from `s` alone — so session `s`'s data (and therefore
//! its deterministic results) is invariant to how many other sessions
//! run beside it. That is the property CI's multi-session
//! determinism leg diffs: per-session rows must be bit-identical
//! across thread counts *and* across `--sessions` values.
//!
//! Rows report, per session, the deterministic counts (`tuples`,
//! `certain`, `rounds`, `plan_probes`), final-round recall, and the
//! session-attributed shared-cache traffic; every row also carries the
//! point's scheduler epoch count and aggregate throughput. A
//! machine-readable JSON document goes to **stdout** (CI archives it
//! as the `BENCH_service` artifact); the table goes to stderr.
//!
//! Usage: `cargo run --release -p certainfix-bench --bin exp_service --
//!         [--sessions N] [--dm N] [--inputs N] [--threads T]
//!         [--batch B] [--depth D] [--chunk C] [--shared-cache on|off]
//!         [--skew F] [--d F] [--n F] [--seed S]
//!         [--compliance F] [--out file.csv] [--no-bdd]`
//!
//! `--inputs` sizes session 0 (the largest); `--threads T` caps the
//! swept worker counts (0 = this machine's available parallelism);
//! `--batch B` pins a single producer batch size. The service pool is
//! steal-only and stream-fed: `--schedule shard` and `--ingest batch`
//! exit 2.

use std::fmt::Write as _;

use certainfix_bench::args::{Args, Spec};
use certainfix_bench::runner::{
    build_engine, fold_session, oracle_factory, session_dirty_config, ExpConfig, Which,
};
use certainfix_bench::sweep::{batch_points, json_escape, thread_points};
use certainfix_bench::table::{f3, Table};
use certainfix_core::{
    BatchRepairEngine, RepairService, Schedule, ServiceOptions, ServiceStream, SliceSource,
};
use certainfix_datagen::Dataset;
use certainfix_relation::Tuple;

/// One session's row at one sweep point.
struct Row {
    dataset: &'static str,
    session: usize,
    threads: usize,
    batch: usize,
    tuples: u64,
    certain: u64,
    rounds: u64,
    plan_probes: u64,
    recall_t: f64,
    shared_hits: u64,
    shared_misses: u64,
    /// Lifecycle counters (engine-global watermarks at the session's
    /// last batch; see `MonitorStats`).
    evicted_delta: u64,
    evicted_lru: u64,
    revalidated: u64,
    saturated: u64,
    /// Pool occupancy after the session's last cache-enabled batch,
    /// with engine-lifetime high-water marks. Zero with the cache off.
    keys: u64,
    entries: u64,
    keys_hw: u64,
    entries_hw: u64,
    /// Scheduler epochs of the whole point (shared by its rows).
    epochs: u64,
    /// End-to-end service wall of the whole point, ms.
    wall_ms: f64,
    /// Aggregate throughput of the whole point, tuples/s.
    throughput_tps: f64,
}

fn render_json(base: &ExpConfig, sessions: usize, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"exp_service\",");
    let _ = writeln!(out, "  \"sessions\": {sessions},");
    let _ = writeln!(out, "  \"dm\": {},", base.dm);
    let _ = writeln!(out, "  \"inputs\": {},", base.inputs);
    let _ = writeln!(out, "  \"d\": {},", base.d);
    let _ = writeln!(out, "  \"n\": {},", base.n);
    let _ = writeln!(out, "  \"skew\": {},", base.skew);
    let _ = writeln!(out, "  \"use_bdd\": {},", base.use_bdd);
    let _ = writeln!(out, "  \"threads\": {},", base.threads.max(1));
    let _ = writeln!(out, "  \"shared_cache\": {},", base.shared_cache);
    let _ = writeln!(out, "  \"depth\": {},", base.depth);
    let _ = writeln!(out, "  \"chunk\": {},", base.chunk);
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"dataset\": \"{}\", \"session\": {}, \"threads\": {}, \"batch\": {}, \
             \"tuples\": {}, \"certain\": {}, \"rounds\": {}, \"plan_probes\": {}, \
             \"recall_t\": {:.4}, \"shared_hits\": {}, \"shared_misses\": {}, \
             \"evicted_delta\": {}, \"evicted_lru\": {}, \"revalidated\": {}, \
             \"saturated\": {}, \"keys\": {}, \"entries\": {}, \"keys_hw\": {}, \
             \"entries_hw\": {}, \"epochs\": {}, \"wall_ms\": {:.3}, \
             \"throughput_tps\": {:.1}}}",
            json_escape(r.dataset),
            r.session,
            r.threads,
            r.batch,
            r.tuples,
            r.certain,
            r.rounds,
            r.plan_probes,
            r.recall_t,
            r.shared_hits,
            r.shared_misses,
            r.evicted_delta,
            r.evicted_lru,
            r.revalidated,
            r.saturated,
            r.keys,
            r.entries,
            r.keys_hw,
            r.entries_hw,
            r.epochs,
            r.wall_ms,
            r.throughput_tps,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = Args::from_env_strict(&Spec::exp("exp_service").valued(&["sessions"]));
    let mut base = ExpConfig::from_args(&args);
    if args.has("ingest") {
        // the service is stream-fed by construction (one feeder lane
        // per session); an `--ingest` flag here could only mislabel
        eprintln!("exp_service: the service is always stream-fed; drop --ingest");
        std::process::exit(2);
    }
    if args.has("schedule") && base.schedule == Schedule::Shard {
        eprintln!("exp_service: the service pool is steal-only; --schedule shard is unsupported");
        std::process::exit(2);
    }
    if !args.has("threads") {
        base.threads = BatchRepairEngine::auto_threads();
    }
    let sessions = args.usize_or("sessions", 2).max(1);
    let pinned_batch = args.has("batch").then_some(base.batch);

    let mut rows: Vec<Row> = Vec::new();
    for which in Which::BOTH {
        let w = which.build(base.dm);
        // per-session datasets, fixed for every point of this workload
        let datasets: Vec<Dataset> = (0..sessions)
            .map(|s| Dataset::generate(w.as_ref(), &session_dirty_config(&base, s)))
            .collect();
        let dirty: Vec<Vec<Tuple>> = datasets
            .iter()
            .map(|ds| ds.inputs.iter().map(|dt| dt.dirty.clone()).collect())
            .collect();
        for &threads in &thread_points(base.threads.max(1)) {
            for &batch in &batch_points(pinned_batch, &[64, 256], base.inputs) {
                let cfg = ExpConfig {
                    threads,
                    batch,
                    ..base
                };
                // a fresh service per point: the engine-lifetime shared
                // cache stays warm across a point's epochs but must not
                // leak between points
                let service = RepairService::from_engine(
                    build_engine(w.as_ref(), &cfg),
                    ServiceOptions {
                        threads,
                        chunk: base.chunk,
                        shared_cache: base.shared_cache,
                        depth: base.depth,
                    },
                );
                let streams = datasets
                    .iter()
                    .zip(&dirty)
                    .enumerate()
                    .map(|(s, (ds, tuples))| {
                        ServiceStream::new(
                            format!("s{s}"),
                            SliceSource::with_batch(tuples, batch),
                            oracle_factory(ds, base.compliance),
                        )
                    })
                    .collect();
                let report = service.run(streams);
                let wall_ms = report.wall.as_secs_f64() * 1e3;
                let throughput_tps = report.throughput();
                let epochs = report.epochs;
                for (s, named) in report.sessions.into_iter().enumerate() {
                    let occupancy = named.report.shared.clone();
                    let folded = fold_session(named.report, datasets[s].clone(), 8);
                    let last = folded.metrics.last().expect("rounds >= 1");
                    let occupancy = occupancy.unwrap_or_default();
                    rows.push(Row {
                        dataset: which.name(),
                        session: s,
                        threads,
                        batch,
                        tuples: folded.stats.tuples,
                        certain: folded.stats.certain,
                        rounds: folded.stats.rounds,
                        plan_probes: folded.stats.plan_probes,
                        recall_t: last.recall_t,
                        shared_hits: folded.stats.shared_hits,
                        shared_misses: folded.stats.shared_misses,
                        evicted_delta: folded.stats.shared_evicted_delta,
                        evicted_lru: folded.stats.shared_evicted_lru,
                        revalidated: folded.stats.shared_revalidated,
                        saturated: folded.stats.shared_saturated,
                        keys: occupancy.keys,
                        entries: occupancy.entries,
                        keys_hw: occupancy.keys_high_water,
                        entries_hw: occupancy.entries_high_water,
                        epochs,
                        wall_ms,
                        throughput_tps,
                    });
                }
            }
        }
    }

    let mut table = Table::new([
        "dataset", "session", "threads", "batch", "tuples", "certain", "rounds", "recall_t",
        "epochs", "tuples/s",
    ]);
    for r in &rows {
        table.row([
            r.dataset.to_string(),
            r.session.to_string(),
            r.threads.to_string(),
            r.batch.to_string(),
            r.tuples.to_string(),
            r.certain.to_string(),
            r.rounds.to_string(),
            f3(r.recall_t),
            r.epochs.to_string(),
            format!("{:.0}", r.throughput_tps),
        ]);
    }
    eprintln!(
        "exp_service: sessions = {}, |Dm| = {}, |D| (session 0) = {}, d% = {:.0}, n% = {:.0}, \
         skew = {}, bdd = {}, shared cache = {}",
        sessions,
        base.dm,
        base.inputs,
        base.d * 100.0,
        base.n * 100.0,
        base.skew,
        base.use_bdd,
        base.shared_cache
    );
    eprint!("{}", table.render());
    table
        .maybe_write_csv(args.str_or("out", ""))
        .expect("writing CSV output");

    // machine-readable output on stdout — what CI archives
    print!("{}", render_json(&base, sessions, &rows));
}
