//! Fig. 10: tuple-level fixes when varying d%, |Dm| or n%.
//!
//! * Fig. 10a/d — vary the duplicate rate d% ∈ {10..50}: recall_t grows
//!   with d%, and recall_t(k=1) tracks d% itself.
//! * Fig. 10b/e — vary |Dm| ∈ {0.5x..2.5x}: recall_t at k = 1 is
//!   insensitive to |Dm| (it is governed by d%).
//! * Fig. 10c/f — vary the noise rate n% ∈ {10..50}: recall_t is
//!   insensitive to n%.
//!
//! Usage: `cargo run --release -p certainfix-bench --bin fig10
//!         [--vary d|dm|n|all] [--dm N] [--inputs N] [--out file.csv]`

use certainfix_bench::args::{Args, Spec};
use certainfix_bench::runner::{run_monitored, ExpConfig, Which};
use certainfix_bench::table::{f3, Table};

fn sweep(which: Which, base: &ExpConfig, vary: &str, table: &mut Table) {
    let rounds = 4;
    let points: Vec<(String, ExpConfig)> = match vary {
        "d" => [0.1, 0.2, 0.3, 0.4, 0.5]
            .iter()
            .map(|&d| (format!("d={d:.1}"), ExpConfig { d, ..*base }))
            .collect(),
        "dm" => [0.5, 1.0, 1.5, 2.0, 2.5]
            .iter()
            .map(|&f| {
                let dm = (base.dm as f64 * f) as usize;
                (format!("|Dm|={dm}"), ExpConfig { dm, ..*base })
            })
            .collect(),
        "n" => [0.1, 0.2, 0.3, 0.4, 0.5]
            .iter()
            .map(|&n| (format!("n={n:.1}"), ExpConfig { n, ..*base }))
            .collect(),
        other => panic!("unknown sweep `{other}` (use d, dm, n or all)"),
    };
    for (label, cfg) in points {
        let w = which.build(cfg.dm);
        let result = run_monitored(w.as_ref(), &cfg, rounds);
        let mut row = vec![which.name().to_string(), vary.to_string(), label];
        for k in 1..=rounds {
            row.push(f3(result.at_round(k).recall_t));
        }
        table.row(row);
    }
}

fn main() {
    let args = Args::from_env_strict(&Spec::exp("fig10").valued(&["vary"]));
    let base = ExpConfig::from_args(&args);
    let vary = args.str_or("vary", "all").to_string();
    let mut table = Table::new(["dataset", "sweep", "point", "k=1", "k=2", "k=3", "k=4"]);

    let sweeps: Vec<&str> = if vary == "all" {
        vec!["d", "dm", "n"]
    } else {
        vec![vary.as_str()]
    };
    for which in Which::BOTH {
        for s in &sweeps {
            sweep(which, &base, s, &mut table);
        }
    }

    println!("Fig. 10: tuple-level recall (recall_t) after k rounds");
    println!(
        "(defaults: d% = {:.0}, |Dm| = {}, n% = {:.0}, |D| = {})",
        base.d * 100.0,
        base.dm,
        base.n * 100.0,
        base.inputs
    );
    println!("{}", table.render());
    table
        .maybe_write_csv(args.str_or("out", ""))
        .expect("writing CSV output");
}
