//! Fig. 9: recall vs. the number of interactions.
//!
//! * Fig. 9a (tuple level): recall_t after k rounds, plus the paper's
//!   headline reading — the fraction of eventually-fixed tuples already
//!   fixed by round k ("93% (resp. 100%) of tuples are fixed in the
//!   third round for hosp (resp. dblp)").
//! * Fig. 9b (attribute level): recall_a after k rounds; errors fixed
//!   by the users are not counted.
//!
//! The multi-round dynamics come from users who do not answer a whole
//! suggestion at once (Sect. 5: "S may not necessarily be the same as
//! sug"); `--compliance 1.0` collapses most fixes into round 1.
//!
//! Usage: `cargo run --release -p certainfix-bench --bin fig9
//!         [--dm N] [--inputs N] [--compliance C] [--out file.csv]`

use certainfix_bench::args::{Args, Spec};
use certainfix_bench::runner::{run_monitored, ExpConfig, Which};
use certainfix_bench::table::{f3, Table};

fn main() {
    let args = Args::from_env_strict(&Spec::exp("fig9"));
    let mut base = ExpConfig::from_args(&args);
    if !args.has("compliance") {
        // partial compliance reveals the multi-round shape of Fig. 9
        base.compliance = 0.7;
    }
    let rounds = 5;
    let mut table = Table::new([
        "dataset",
        "k",
        "recall_t",
        "fixed_frac",
        "recall_a",
        "precision_a",
    ]);

    for which in Which::BOTH {
        let w = which.build(base.dm);
        let result = run_monitored(w.as_ref(), &base, rounds);
        let final_recall_t = result.metrics.last().unwrap().recall_t;
        for m in &result.metrics {
            let fixed_frac = if final_recall_t > 0.0 {
                m.recall_t / final_recall_t
            } else {
                0.0
            };
            table.row([
                which.name().to_string(),
                m.round.to_string(),
                f3(m.recall_t),
                f3(fixed_frac),
                f3(m.recall_a),
                f3(m.precision_a),
            ]);
        }
        println!(
            "{}: max rounds observed = {}, avg rounds = {:.2}",
            which.name(),
            result.max_rounds(),
            result.stats.avg_rounds()
        );
    }

    println!();
    println!(
        "Fig. 9 (a: recall_t / fixed fraction, b: recall_a) — d% = {:.0}, |Dm| = {}, n% = {:.0}, compliance = {:.1}",
        base.d * 100.0,
        base.dm,
        base.n * 100.0,
        base.compliance
    );
    println!("{}", table.render());
    table
        .maybe_write_csv(args.str_or("out", ""))
        .expect("writing CSV output");
}
