//! Live-master sweep: delta cadence × worker count, with the
//! delta-maintained session checked batch-by-batch against freshly
//! rebuilt engines (the D10 obligation at bench scale).
//!
//! Every point seeds the engine with the first `--dm` master rows of a
//! larger generated master, streams the dirty inputs through a
//! `RepairSession` in `--batch`-sized batches, and after every
//! `--delta-every` batches applies a [`MasterDelta`] inserting the
//! next `--delta-size` held-back master rows — so the master grows
//! *while the stream is being repaired*, and later batches repair
//! against later generations. For each batch the harness then builds a
//! fresh engine over exactly the master state that batch pinned and
//! re-repairs it: the outcomes and `plan_probes` must be bit-identical
//! (`"match": true` in every row), the batch generations must be
//! non-decreasing, and `plan_rebuilds` must equal the number of deltas
//! applied.
//!
//! The binary always runs plain `CertainFix` with the BDD and shared
//! caches off — the configuration under which the delta-maintained ≡
//! rebuilt guarantee is bit-exact (warm caches are semantically
//! transparent but perturb probe counts, which this harness asserts
//! on). Rows at the same `(dataset, delta_every)` point differ only in
//! the worker count, so CI can additionally diff their deterministic
//! count fields across `--threads` legs.
//!
//! A machine-readable JSON document goes to **stdout** (CI archives it
//! as the `BENCH_delta` artifact); the human-readable table goes to
//! stderr.
//!
//! Usage: `cargo run --release -p certainfix-bench --bin exp_delta --
//!         [--dm N] [--inputs N] [--threads T] [--batch B]
//!         [--delta-every K] [--delta-size R] [--chunk C] [--skew F]
//!         [--d F] [--n F] [--seed S] [--compliance F]
//!         [--out file.csv]`
//!
//! `--threads T` caps the swept worker counts (0 = this machine's
//! available parallelism); `--delta-every K` pins a single cadence
//! instead of the default `{1, 4}` sweep.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use certainfix_bench::args::{Args, Spec};
use certainfix_bench::runner::{oracle_factory, ExpConfig, Which};
use certainfix_bench::sweep::{json_escape, thread_points};
use certainfix_bench::table::Table;
use certainfix_core::{
    BatchRepairEngine, CertainFixConfig, InitialRegion, RepairContext, RepairOptions, Schedule,
};
use certainfix_datagen::{Dataset, Workload};
use certainfix_relation::{MasterDelta, Relation, Tuple};

/// One measured sweep point.
struct Row {
    dataset: &'static str,
    threads: usize,
    delta_every: usize,
    delta_size: usize,
    batches: usize,
    deltas: u64,
    generation: u64,
    tuples: u64,
    certain: u64,
    plan_probes: u64,
    probe_allocs: u64,
    wall_ms: f64,
    throughput_tps: f64,
    matches: bool,
}

/// The master state after `applied` delta rows: the generated master's
/// first `dm + applied` rows as a fresh relation.
fn master_prefix(full: &Arc<Relation>, rows: usize) -> Arc<Relation> {
    Arc::new(
        Relation::new(full.schema().clone(), full.tuples()[..rows].to_vec())
            .expect("prefix of a valid master is valid"),
    )
}

fn plain_context(w: &dyn Workload, master: Arc<Relation>) -> RepairContext {
    RepairContext::with_config(
        w.rules().clone(),
        master,
        false,
        InitialRegion::Best,
        CertainFixConfig::default(),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_point(
    which: Which,
    w: &dyn Workload,
    dataset: &Dataset,
    base: &ExpConfig,
    threads: usize,
    every: usize,
    size: usize,
    batch: usize,
) -> Row {
    let full = w.master().clone();
    let reserve = full.len() - base.dm;
    let dirty: Vec<Tuple> = dataset.inputs.iter().map(|dt| dt.dirty.clone()).collect();
    let oracle = oracle_factory(dataset, base.compliance);
    let opts = RepairOptions {
        threads,
        schedule: Schedule::Steal,
        shared_cache: false,
        chunk: base.chunk,
    };

    // the live run: one session, deltas applied between batches
    let engine = BatchRepairEngine::new(plain_context(w, master_prefix(&full, base.dm)));
    let mut session = engine.session_opts(opts);
    let started = Instant::now();
    let mut applied = 0usize;
    for (bi, chunk) in dirty.chunks(batch).enumerate() {
        // push_batch hands the oracle the *global* stream index itself
        session.push_batch(chunk, &oracle);
        if (bi + 1) % every == 0 && applied + size <= reserve {
            let mut delta = MasterDelta::new();
            for r in 0..size {
                delta = delta.insert(full.tuple(base.dm + applied + r).clone());
            }
            session.apply_master_delta(&delta).expect("delta applies");
            applied += size;
        }
    }
    let wall = started.elapsed();
    let report = session.finish();

    // the rebuilt baseline: a fresh engine per batch, over exactly the
    // master state that batch pinned
    let mut matches = true;
    let mut last_generation = 0u64;
    let mut rebuilt_rows = 0usize;
    for (bi, (offset, got)) in report.batches_with_offsets().enumerate() {
        matches &= got.generation >= last_generation;
        last_generation = got.generation;
        let fresh = BatchRepairEngine::new(plain_context(
            w,
            master_prefix(&full, base.dm + rebuilt_rows),
        ));
        let chunk = &dirty[offset..(offset + got.outcomes.len())];
        let want = fresh.repair_opts(chunk, &opts, |i| oracle(offset + i));
        matches &= want.outcomes.len() == got.outcomes.len()
            && want.stats.plan_probes == got.stats.plan_probes
            && want
                .outcomes
                .iter()
                .zip(&got.outcomes)
                .all(|(a, b)| a.tuple == b.tuple && a.certain == b.certain);
        // mirror the live run's bookkeeping: the delta lands *after*
        // this batch, so the next batch sees the grown master
        if (bi + 1) % every == 0 && rebuilt_rows + size <= reserve {
            rebuilt_rows += size;
        }
    }
    matches &= report.stats.plan_rebuilds == (applied / size.max(1)) as u64;

    let wall_ms = wall.as_secs_f64() * 1e3;
    Row {
        dataset: which.name(),
        threads,
        delta_every: every,
        delta_size: size,
        batches: dirty.len().div_ceil(batch.max(1)),
        deltas: (applied / size.max(1)) as u64,
        generation: last_generation,
        tuples: report.stats.tuples,
        certain: report.stats.certain,
        plan_probes: report.stats.plan_probes,
        probe_allocs: report.stats.probe_allocs,
        wall_ms,
        throughput_tps: if wall_ms > 0.0 {
            report.stats.tuples as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        matches,
    }
}

fn render_json(base: &ExpConfig, size: usize, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"exp_delta\",");
    let _ = writeln!(out, "  \"dm\": {},", base.dm);
    let _ = writeln!(out, "  \"inputs\": {},", base.inputs);
    let _ = writeln!(out, "  \"d\": {},", base.d);
    let _ = writeln!(out, "  \"n\": {},", base.n);
    let _ = writeln!(out, "  \"skew\": {},", base.skew);
    let _ = writeln!(out, "  \"threads\": {},", base.threads.max(1));
    let _ = writeln!(out, "  \"batch\": {},", base.batch);
    let _ = writeln!(out, "  \"delta_size\": {size},");
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"dataset\": \"{}\", \"threads\": {}, \"delta_every\": {}, \
             \"delta_size\": {}, \"batches\": {}, \"deltas\": {}, \"generation\": {}, \
             \"tuples\": {}, \"certain\": {}, \"plan_probes\": {}, \"probe_allocs\": {}, \
             \"wall_ms\": {:.3}, \"throughput_tps\": {:.1}, \"match\": {}}}",
            json_escape(r.dataset),
            r.threads,
            r.delta_every,
            r.delta_size,
            r.batches,
            r.deltas,
            r.generation,
            r.tuples,
            r.certain,
            r.plan_probes,
            r.probe_allocs,
            r.wall_ms,
            r.throughput_tps,
            r.matches,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let spec = Spec::exp("exp_delta").valued(&["delta-every", "delta-size"]);
    let args = Args::from_env_strict(&spec);
    let mut base = ExpConfig::from_args(&args);
    // plain CertainFix, caches off: the bit-exact D10 configuration
    base.use_bdd = false;
    base.shared_cache = false;
    if !args.has("threads") {
        base.threads = BatchRepairEngine::auto_threads();
    }
    if base.batch == 0 {
        base.batch = 256.min(base.inputs).max(1);
    }
    let size = args.usize_or("delta-size", 16).max(1);
    let cadences: Vec<usize> = match args.usize_or("delta-every", 0) {
        0 => vec![1, 4],
        k => vec![k],
    };
    // enough held-back master rows for the densest cadence, so every
    // cadence runs over the identical generated workload and dataset
    let max_batches = base.inputs.div_ceil(base.batch);
    let reserve = max_batches * size;

    let mut rows: Vec<Row> = Vec::new();
    for which in Which::BOTH {
        let w = which.build(base.dm + reserve);
        let dataset = Dataset::generate(w.as_ref(), &base.dirty_config());
        for &every in &cadences {
            for &threads in &thread_points(base.threads.max(1)) {
                rows.push(run_point(
                    which,
                    w.as_ref(),
                    &dataset,
                    &base,
                    threads,
                    every,
                    size,
                    base.batch,
                ));
            }
        }
    }

    let mut table = Table::new([
        "dataset", "threads", "every", "deltas", "gen", "tuples", "certain", "probes", "wall ms",
        "match",
    ]);
    for r in &rows {
        table.row([
            r.dataset.to_string(),
            r.threads.to_string(),
            r.delta_every.to_string(),
            r.deltas.to_string(),
            r.generation.to_string(),
            r.tuples.to_string(),
            r.certain.to_string(),
            r.plan_probes.to_string(),
            format!("{:.1}", r.wall_ms),
            r.matches.to_string(),
        ]);
    }
    eprintln!(
        "exp_delta: |Dm| = {} (+{} held back), |D| = {}, batch = {}, delta size = {}, \
         d% = {:.0}, n% = {:.0}, skew = {}",
        base.dm,
        reserve,
        base.inputs,
        base.batch,
        size,
        base.d * 100.0,
        base.n * 100.0,
        base.skew
    );
    eprint!("{}", table.render());
    table
        .maybe_write_csv(args.str_or("out", ""))
        .expect("writing CSV output");

    // machine-readable output on stdout — what CI archives
    print!("{}", render_json(&base, size, &rows));

    if rows.iter().any(|r| !r.matches) {
        eprintln!("exp_delta: DELTA-MAINTAINED RUN DIVERGED FROM THE REBUILT BASELINE");
        std::process::exit(1);
    }
}
