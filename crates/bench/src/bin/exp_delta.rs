//! Live-master sweep: delta cadence × worker count, with the
//! delta-maintained session checked batch-by-batch against freshly
//! rebuilt engines (the D10 obligation at bench scale), plus the
//! shared-cache hygiene legs of invariant D12.
//!
//! Every point seeds the engine with the first `--dm` master rows of a
//! larger generated master, streams the dirty inputs through a
//! `RepairSession` in `--batch`-sized batches, and after every
//! `--delta-every` batches applies a [`MasterDelta`] inserting the
//! next `--delta-size` held-back master rows (and, with
//! `--delta-updates U`, overwriting one column in each of `U` existing
//! rows) — so the master evolves *while the stream is being repaired*,
//! and later batches repair against later generations. For each batch
//! the harness then builds a fresh engine over exactly the master
//! state that batch pinned and re-repairs it: the outcomes must be
//! bit-identical (`"match": true` in every row), the batch generations
//! must be non-decreasing, and `plan_rebuilds` must equal the number
//! of deltas applied.
//!
//! Two modes:
//!
//! * **Default** (no `--cache-hygiene`): plain `CertainFix` with the
//!   BDD and shared caches off — the configuration under which the
//!   delta-maintained ≡ rebuilt guarantee is bit-exact down to
//!   `plan_probes` (warm caches are semantically transparent but
//!   perturb probe counts, which this mode asserts on).
//! * **Hygiene legs** (`--cache-hygiene on|off`): the shared
//!   suggestion cache is on, with lifecycle hygiene per the flag and
//!   the per-key candidate cap tightened to `--cand-cap` so the pool
//!   is under measurable pressure. The rebuilt baseline runs the same
//!   configuration with a *cold* cache, and the comparison asserts the
//!   D12 contract: `(tuple, certain)` outcomes are invariant under
//!   cache state (probe counts are not — checked reuse may resolve a
//!   tuple through a different suggestion order). Rows echo the cache
//!   lifecycle counters and a process-stable `outcome_digest` so CI
//!   can diff hygiene-on against hygiene-off runs of the same binary.
//!
//! Rows at the same `(dataset, delta_every)` point differ only in the
//! worker count, so CI can additionally diff their deterministic count
//! fields across `--threads` legs.
//!
//! A machine-readable JSON document goes to **stdout** (CI archives it
//! as the `BENCH_delta` / `BENCH_delta_hygiene` artifact); the
//! human-readable table goes to stderr.
//!
//! `--delta-updates U` with `--delta-cols fixes --delta-size 0`
//! produces *suggestion-preserving* deltas (pure updates that avoid
//! every rule's key column): hygiene-on restamps and keeps its warm
//! pool across each generation, while hygiene-off retires it behind
//! the serve gate — the configuration that measures the warm-start
//! hit-rate win.
//!
//! Usage: `cargo run --release -p certainfix-bench --bin exp_delta --
//!         [--dm N] [--inputs N] [--threads T] [--batch B]
//!         [--delta-every K] [--delta-size R] [--delta-updates U]
//!         [--delta-cols mixed|fixes|keys] [--cache-hygiene on|off]
//!         [--cand-cap N] [--chunk C] [--skew F] [--d F] [--n F]
//!         [--seed S] [--compliance F] [--out file.csv]`
//!
//! `--threads T` caps the swept worker counts (0 = this machine's
//! available parallelism); `--delta-every K` pins a single cadence
//! instead of the default `{1, 4}` sweep.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use certainfix_bench::args::{Args, Spec};
use certainfix_bench::runner::{oracle_factory, ExpConfig, Which};
use certainfix_bench::sweep::{json_escape, thread_points};
use certainfix_bench::table::Table;
use certainfix_core::{
    BatchRepairEngine, CertainFixConfig, FixOutcome, InitialRegion, RepairContext, RepairOptions,
    Schedule, SharedSuggestionCache,
};
use certainfix_datagen::{Dataset, Workload};
use certainfix_relation::{AttrId, MasterDelta, Relation, Tuple};

/// One measured sweep point.
struct Row {
    dataset: &'static str,
    threads: usize,
    delta_every: usize,
    delta_size: usize,
    batches: usize,
    deltas: u64,
    generation: u64,
    tuples: u64,
    certain: u64,
    plan_probes: u64,
    probe_allocs: u64,
    wall_ms: f64,
    throughput_tps: f64,
    matches: bool,
    /// `None` = caches off (the bit-exact default mode).
    hygiene: Option<bool>,
    shared_hits: u64,
    shared_misses: u64,
    evicted_delta: u64,
    evicted_lru: u64,
    revalidated: u64,
    saturated: u64,
    keys: u64,
    entries: u64,
    keys_hw: u64,
    entries_hw: u64,
    outcome_digest: u64,
}

/// FNV-1a over the rendered outcomes: interned symbol ids are not
/// stable across processes, so the digest hashes the rendered cell
/// strings (which are) plus the certainty flag — the form CI diffs
/// across hygiene-on and hygiene-off runs.
fn outcome_digest<'a>(outcomes: impl Iterator<Item = &'a FixOutcome>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for o in outcomes {
        eat(o.tuple.render().as_bytes());
        eat(&[o.certain as u8, 0xFF]);
    }
    h
}

/// The live master as a plain row list, maintained alongside the
/// session so update deltas (which `master_prefix` slicing cannot
/// express) still have an exact rebuilt-baseline master per batch.
struct MasterMirror {
    rows: Vec<Tuple>,
    schema: Arc<certainfix_relation::Schema>,
}

impl MasterMirror {
    fn new(full: &Arc<Relation>, dm: usize) -> MasterMirror {
        MasterMirror {
            rows: full.tuples()[..dm].to_vec(),
            schema: full.schema().clone(),
        }
    }

    fn apply(&mut self, delta: &MasterDelta) {
        for (row, t) in delta.updates() {
            self.rows[*row as usize] = t.clone();
        }
        for t in delta.inserts() {
            self.rows.push(t.clone());
        }
    }

    fn snapshot(&self) -> Arc<Relation> {
        Arc::new(
            Relation::new(self.schema.clone(), self.rows.clone())
                .expect("mirrored master rows are valid"),
        )
    }
}

/// Which master columns `--delta-updates` may overwrite. The choice
/// decides whether an update delta is *suggestion-preserving* (see
/// the shared cache's lifecycle docs): `Fixes` touches only columns
/// that are no rule's key, so with `--delta-size 0` the deltas are
/// provably preserving and hygiene-on carries the warm pool across
/// every generation; `Keys` touches only rule keys (maximal taint);
/// `Mixed` cycles every column.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DeltaCols {
    Mixed,
    Fixes,
    Keys,
}

impl DeltaCols {
    fn name(self) -> &'static str {
        match self {
            DeltaCols::Mixed => "mixed",
            DeltaCols::Fixes => "fixes",
            DeltaCols::Keys => "keys",
        }
    }

    /// The update-column pool for this mode under `w`'s rules.
    fn pool(self, w: &dyn Workload) -> Vec<AttrId> {
        let arity = w.master().schema().len();
        let mut is_key = vec![false; arity];
        for (_, rule) in w.rules().iter() {
            for &m in rule.lhs_m() {
                is_key[m.0 as usize] = true;
            }
            for &a in rule.lhs_p() {
                if let Some(m) = rule.master_attr_for(a) {
                    is_key[m.0 as usize] = true;
                }
            }
        }
        let cols: Vec<AttrId> = (0..arity)
            .filter(|&i| match self {
                DeltaCols::Mixed => true,
                DeltaCols::Fixes => !is_key[i],
                DeltaCols::Keys => is_key[i],
            })
            .map(|i| AttrId(i as u16))
            .collect();
        assert!(
            !cols.is_empty(),
            "--delta-cols {}: no eligible master column under this rule set",
            self.name()
        );
        cols
    }
}

/// The delta applied after batch `di`: `size` held-back inserts plus
/// `updates` single-column overwrites of existing rows, each copying
/// the same column from another current row — deterministic in
/// `(di, j)`, so every hygiene leg of a sweep point mutates the master
/// identically. Update columns cycle through `cols`.
#[allow(clippy::too_many_arguments)]
fn build_delta(
    full: &Arc<Relation>,
    mirror: &MasterMirror,
    dm: usize,
    applied: usize,
    size: usize,
    updates: usize,
    cols: &[AttrId],
    di: usize,
) -> MasterDelta {
    let mut delta = MasterDelta::new();
    let len = mirror.rows.len();
    for j in 0..updates {
        let r = ((di as u64)
            .wrapping_mul(31)
            .wrapping_add((j as u64).wrapping_mul(17))
            .wrapping_mul(0x9E37_79B9))
            % len as u64;
        let donor = (r + 1 + j as u64) % len as u64;
        let col = cols[(di + j) % cols.len()];
        let mut t = mirror.rows[r as usize].clone();
        t.set(col, *mirror.rows[donor as usize].get(col));
        delta = delta.update(r as u32, t);
    }
    for r in 0..size {
        delta = delta.insert(full.tuple(dm + applied + r).clone());
    }
    delta
}

fn plain_context(w: &dyn Workload, master: Arc<Relation>) -> RepairContext {
    RepairContext::with_config(
        w.rules().clone(),
        master,
        false,
        InitialRegion::Best,
        CertainFixConfig::default(),
    )
}

/// An engine for the selected mode: caches off (`None`) or the shared
/// cache on with lifecycle hygiene per the flag and a tightened
/// per-key candidate cap.
fn engine_for(
    w: &dyn Workload,
    master: Arc<Relation>,
    hygiene: Option<bool>,
    cand_cap: usize,
) -> BatchRepairEngine {
    let ctx = plain_context(w, master);
    match hygiene {
        None => BatchRepairEngine::new(ctx),
        Some(h) => BatchRepairEngine::with_shared_cache(
            ctx,
            SharedSuggestionCache::with_limits(
                h,
                SharedSuggestionCache::MAX_KEYS_PER_SHARD,
                cand_cap,
            ),
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_point(
    which: Which,
    w: &dyn Workload,
    dataset: &Dataset,
    base: &ExpConfig,
    threads: usize,
    every: usize,
    size: usize,
    updates: usize,
    cols: &[AttrId],
    hygiene: Option<bool>,
    cand_cap: usize,
    batch: usize,
) -> Row {
    let full = w.master().clone();
    let reserve = full.len() - base.dm;
    let dirty: Vec<Tuple> = dataset.inputs.iter().map(|dt| dt.dirty.clone()).collect();
    let oracle = oracle_factory(dataset, base.compliance);
    let opts = RepairOptions {
        threads,
        schedule: Schedule::Steal,
        shared_cache: hygiene.is_some(),
        chunk: base.chunk,
    };

    // the live run: one session, deltas applied between batches; the
    // mirror tracks the evolving master row list and snapshots the
    // state each batch pins, so the rebuilt baseline can reconstruct
    // it even when update deltas overwrite rows
    let mut mirror = MasterMirror::new(&full, base.dm);
    let engine = engine_for(w, mirror.snapshot(), hygiene, cand_cap);
    let mut session = engine.session_opts(opts);
    let started = Instant::now();
    let mut applied = 0usize;
    let mut deltas = 0usize;
    let mut pinned: Vec<Arc<Relation>> = Vec::new();
    let mut current = mirror.snapshot();
    for (bi, chunk) in dirty.chunks(batch).enumerate() {
        pinned.push(current.clone());
        // push_batch hands the oracle the *global* stream index itself
        session.push_batch(chunk, &oracle);
        if (bi + 1) % every == 0 && applied + size <= reserve {
            let delta = build_delta(
                &full, &mirror, base.dm, applied, size, updates, cols, deltas,
            );
            session.apply_master_delta(&delta).expect("delta applies");
            mirror.apply(&delta);
            current = mirror.snapshot();
            applied += size;
            deltas += 1;
        }
    }
    let wall = started.elapsed();
    let report = session.finish();
    let cache = hygiene.map(|_| engine.shared_cache().stats());

    // the rebuilt baseline: a fresh engine per batch, over exactly the
    // master state that batch pinned. With the shared cache on this is
    // the cold-cache leg of D12: `(tuple, certain)` must agree, while
    // probe counts may not (checked reuse can resolve a tuple through
    // a different suggestion order). With caches off the match is
    // bit-exact down to `plan_probes`.
    let mut matches = true;
    let mut last_generation = 0u64;
    for (bi, (offset, got)) in report.batches_with_offsets().enumerate() {
        matches &= got.generation >= last_generation;
        last_generation = got.generation;
        let fresh = engine_for(w, pinned[bi].clone(), hygiene, cand_cap);
        let chunk = &dirty[offset..(offset + got.outcomes.len())];
        let want = fresh.repair_opts(chunk, &opts, |i| oracle(offset + i));
        matches &= want.outcomes.len() == got.outcomes.len()
            && (hygiene.is_some() || want.stats.plan_probes == got.stats.plan_probes)
            && want
                .outcomes
                .iter()
                .zip(&got.outcomes)
                .all(|(a, b)| a.tuple == b.tuple && a.certain == b.certain);
    }
    matches &= report.stats.plan_rebuilds == deltas as u64;

    let wall_ms = wall.as_secs_f64() * 1e3;
    let cache = cache.unwrap_or_default();
    Row {
        dataset: which.name(),
        threads,
        delta_every: every,
        delta_size: size,
        batches: dirty.len().div_ceil(batch.max(1)),
        deltas: deltas as u64,
        generation: last_generation,
        tuples: report.stats.tuples,
        certain: report.stats.certain,
        plan_probes: report.stats.plan_probes,
        probe_allocs: report.stats.probe_allocs,
        wall_ms,
        throughput_tps: if wall_ms > 0.0 {
            report.stats.tuples as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        matches,
        hygiene,
        shared_hits: cache.hits,
        shared_misses: cache.misses,
        evicted_delta: cache.evicted_delta,
        evicted_lru: cache.evicted_lru,
        revalidated: cache.revalidated,
        saturated: cache.saturated,
        keys: cache.keys,
        entries: cache.entries,
        keys_hw: cache.keys_high_water,
        entries_hw: cache.entries_high_water,
        outcome_digest: outcome_digest(report.outcomes()),
    }
}

fn hygiene_str(hygiene: Option<bool>) -> &'static str {
    match hygiene {
        None => "none",
        Some(true) => "on",
        Some(false) => "off",
    }
}

fn render_json(
    base: &ExpConfig,
    size: usize,
    updates: usize,
    delta_cols: DeltaCols,
    cand_cap: usize,
    rows: &[Row],
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"exp_delta\",");
    let _ = writeln!(out, "  \"dm\": {},", base.dm);
    let _ = writeln!(out, "  \"inputs\": {},", base.inputs);
    let _ = writeln!(out, "  \"d\": {},", base.d);
    let _ = writeln!(out, "  \"n\": {},", base.n);
    let _ = writeln!(out, "  \"skew\": {},", base.skew);
    let _ = writeln!(out, "  \"threads\": {},", base.threads.max(1));
    let _ = writeln!(out, "  \"batch\": {},", base.batch);
    let _ = writeln!(out, "  \"delta_size\": {size},");
    let _ = writeln!(out, "  \"delta_updates\": {updates},");
    let _ = writeln!(out, "  \"delta_cols\": \"{}\",", delta_cols.name());
    let _ = writeln!(out, "  \"cand_cap\": {cand_cap},");
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let hit_rate = if r.shared_hits + r.shared_misses == 0 {
            0.0
        } else {
            r.shared_hits as f64 / (r.shared_hits + r.shared_misses) as f64
        };
        let _ = write!(
            out,
            "    {{\"dataset\": \"{}\", \"threads\": {}, \"delta_every\": {}, \
             \"delta_size\": {}, \"batches\": {}, \"deltas\": {}, \"generation\": {}, \
             \"tuples\": {}, \"certain\": {}, \"plan_probes\": {}, \"probe_allocs\": {}, \
             \"wall_ms\": {:.3}, \"throughput_tps\": {:.1}, \"match\": {}, \
             \"cache_hygiene\": \"{}\", \"shared_hits\": {}, \"shared_misses\": {}, \
             \"hit_rate\": {:.4}, \"evicted_delta\": {}, \"evicted_lru\": {}, \
             \"revalidated\": {}, \"saturated\": {}, \"keys\": {}, \"entries\": {}, \
             \"keys_hw\": {}, \"entries_hw\": {}, \"outcome_digest\": \"{:016x}\"}}",
            json_escape(r.dataset),
            r.threads,
            r.delta_every,
            r.delta_size,
            r.batches,
            r.deltas,
            r.generation,
            r.tuples,
            r.certain,
            r.plan_probes,
            r.probe_allocs,
            r.wall_ms,
            r.throughput_tps,
            r.matches,
            hygiene_str(r.hygiene),
            r.shared_hits,
            r.shared_misses,
            hit_rate,
            r.evicted_delta,
            r.evicted_lru,
            r.revalidated,
            r.saturated,
            r.keys,
            r.entries,
            r.keys_hw,
            r.entries_hw,
            r.outcome_digest,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let spec = Spec::exp("exp_delta").valued(&[
        "delta-every",
        "delta-size",
        "delta-updates",
        "delta-cols",
        "cache-hygiene",
        "cand-cap",
    ]);
    let args = Args::from_env_strict(&spec);
    let mut base = ExpConfig::from_args(&args);
    // plain CertainFix, BDD off: `--cache-hygiene` turns the shared
    // cache on; without it this is the bit-exact D10 configuration
    base.use_bdd = false;
    let hygiene: Option<bool> = match args.str_or("cache-hygiene", "") {
        "" => None,
        "on" => Some(true),
        "off" => Some(false),
        other => panic!("--cache-hygiene must be `on` or `off`, got `{other}`"),
    };
    base.shared_cache = hygiene.is_some();
    if !args.has("threads") {
        base.threads = BatchRepairEngine::auto_threads();
    }
    if base.batch == 0 {
        base.batch = 256.min(base.inputs).max(1);
    }
    let size = args.usize_or("delta-size", 16);
    let updates = args.usize_or("delta-updates", 0);
    assert!(
        size > 0 || updates > 0,
        "--delta-size 0 needs --delta-updates > 0 (an empty delta mutates nothing)"
    );
    let delta_cols = match args.str_or("delta-cols", "mixed") {
        "mixed" => DeltaCols::Mixed,
        "fixes" => DeltaCols::Fixes,
        "keys" => DeltaCols::Keys,
        other => panic!("--delta-cols must be `mixed`, `fixes`, or `keys`, got `{other}`"),
    };
    let cand_cap = args
        .usize_or("cand-cap", SharedSuggestionCache::MAX_CANDIDATES_PER_KEY)
        .max(1);
    let cadences: Vec<usize> = match args.usize_or("delta-every", 0) {
        0 => vec![1, 4],
        k => vec![k],
    };
    // enough held-back master rows for the densest cadence, so every
    // cadence runs over the identical generated workload and dataset
    let max_batches = base.inputs.div_ceil(base.batch);
    let reserve = max_batches * size;

    let mut rows: Vec<Row> = Vec::new();
    for which in Which::BOTH {
        let w = which.build(base.dm + reserve);
        let dataset = Dataset::generate(w.as_ref(), &base.dirty_config());
        let cols = if updates > 0 {
            delta_cols.pool(w.as_ref())
        } else {
            vec![AttrId(0)] // unused
        };
        for &every in &cadences {
            for &threads in &thread_points(base.threads.max(1)) {
                rows.push(run_point(
                    which,
                    w.as_ref(),
                    &dataset,
                    &base,
                    threads,
                    every,
                    size,
                    updates,
                    &cols,
                    hygiene,
                    cand_cap,
                    base.batch,
                ));
            }
        }
    }

    let mut table = Table::new([
        "dataset", "threads", "every", "deltas", "gen", "tuples", "certain", "probes", "hit%",
        "evict", "wall ms", "match",
    ]);
    for r in &rows {
        let probes = r.shared_hits + r.shared_misses;
        table.row([
            r.dataset.to_string(),
            r.threads.to_string(),
            r.delta_every.to_string(),
            r.deltas.to_string(),
            r.generation.to_string(),
            r.tuples.to_string(),
            r.certain.to_string(),
            r.plan_probes.to_string(),
            if probes == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", 100.0 * r.shared_hits as f64 / probes as f64)
            },
            (r.evicted_delta + r.evicted_lru).to_string(),
            format!("{:.1}", r.wall_ms),
            r.matches.to_string(),
        ]);
    }
    eprintln!(
        "exp_delta: |Dm| = {} (+{} held back), |D| = {}, batch = {}, delta size = {}, \
         delta updates = {} ({}), cache hygiene = {}, cand cap = {}, d% = {:.0}, n% = {:.0}, \
         skew = {}",
        base.dm,
        reserve,
        base.inputs,
        base.batch,
        size,
        updates,
        delta_cols.name(),
        hygiene_str(hygiene),
        cand_cap,
        base.d * 100.0,
        base.n * 100.0,
        base.skew
    );
    eprint!("{}", table.render());
    table
        .maybe_write_csv(args.str_or("out", ""))
        .expect("writing CSV output");

    // machine-readable output on stdout — what CI archives
    print!(
        "{}",
        render_json(&base, size, updates, delta_cols, cand_cap, &rows)
    );

    if rows.iter().any(|r| !r.matches) {
        eprintln!("exp_delta: DELTA-MAINTAINED RUN DIVERGED FROM THE REBUILT BASELINE");
        std::process::exit(1);
    }
}
