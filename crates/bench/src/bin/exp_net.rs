//! Network ingest sweep: N loopback connections × thread count ×
//! client batch size on both workloads, served by a
//! [`RepairServer`] over one engine.
//!
//! Every point binds a fresh server on `127.0.0.1:0`, dials
//! `--sessions` concurrent [`RepairClient`]s (connection `s` streams
//! the *same* skew-sized, `s`-seeded dataset that `exp_service`'s
//! session `s` drains in process — [`session_dirty_config`] is shared
//! between the two binaries), and folds each client's reassembled
//! session report into the usual per-session rows. That makes the
//! rows directly diffable: invariant **D11** says a row produced over
//! the wire is bit-identical in its deterministic columns (`tuples`,
//! `certain`, `rounds`, `plan_probes`, `recall_t`) to the
//! corresponding in-process `exp_service` row, at any worker count,
//! client chunking, or co-resident connection count — and CI diffs
//! exactly that.
//!
//! Rows come from the *client-side* reconstruction (the wire's
//! round-tripped reports, the shape a remote tenant would see), with
//! the server-side session report cross-checked against it at every
//! point. A machine-readable JSON document goes to **stdout** (CI
//! archives it as the `BENCH_net` artifact); the table goes to stderr.
//!
//! Usage: `cargo run --release -p certainfix-bench --bin exp_net --
//!         [--sessions N] [--dm N] [--inputs N] [--threads T]
//!         [--batch B] [--depth D] [--chunk C] [--shared-cache on|off]
//!         [--skew F] [--d F] [--n F] [--seed S] [--out file.csv]
//!         [--no-bdd]`
//!
//! The wire protocol ships each batch's clean ground truth to the
//! server, whose oracle is the fully-compliant simulated user —
//! `--compliance` below 1.0 is meaningless here and exits 2.
//!
//! [`RepairServer`]: certainfix_net::RepairServer
//! [`RepairClient`]: certainfix_net::RepairClient
//! [`session_dirty_config`]: certainfix_bench::runner::session_dirty_config

use std::fmt::Write as _;

use certainfix_bench::args::{Args, Spec};
use certainfix_bench::runner::{
    build_engine, fold_session, session_dirty_config, ExpConfig, Which,
};
use certainfix_bench::sweep::{batch_points, json_escape, thread_points};
use certainfix_bench::table::{f3, Table};
use certainfix_core::{BatchRepairEngine, RepairService, Schedule, ServiceOptions};
use certainfix_datagen::Dataset;
use certainfix_net::{RepairClient, RepairServer};
use certainfix_relation::Tuple;

/// One connection's row at one sweep point — same shape as
/// `exp_service`'s, so CI can diff the two documents row for row.
struct Row {
    dataset: &'static str,
    session: usize,
    threads: usize,
    batch: usize,
    tuples: u64,
    certain: u64,
    rounds: u64,
    plan_probes: u64,
    recall_t: f64,
    shared_hits: u64,
    shared_misses: u64,
    /// Scheduler epochs of the whole point (shared by its rows).
    epochs: u64,
    /// End-to-end server wall of the whole point, ms.
    wall_ms: f64,
    /// Aggregate throughput of the whole point, tuples/s.
    throughput_tps: f64,
    /// Frames this connection sent over its socket.
    net_frames_in: u64,
    /// Bytes this connection sent over its socket.
    net_bytes_in: u64,
}

fn render_json(base: &ExpConfig, sessions: usize, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"exp_net\",");
    let _ = writeln!(out, "  \"sessions\": {sessions},");
    let _ = writeln!(out, "  \"dm\": {},", base.dm);
    let _ = writeln!(out, "  \"inputs\": {},", base.inputs);
    let _ = writeln!(out, "  \"d\": {},", base.d);
    let _ = writeln!(out, "  \"n\": {},", base.n);
    let _ = writeln!(out, "  \"skew\": {},", base.skew);
    let _ = writeln!(out, "  \"use_bdd\": {},", base.use_bdd);
    let _ = writeln!(out, "  \"threads\": {},", base.threads.max(1));
    let _ = writeln!(out, "  \"shared_cache\": {},", base.shared_cache);
    let _ = writeln!(out, "  \"depth\": {},", base.depth);
    let _ = writeln!(out, "  \"chunk\": {},", base.chunk);
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"dataset\": \"{}\", \"session\": {}, \"threads\": {}, \"batch\": {}, \
             \"tuples\": {}, \"certain\": {}, \"rounds\": {}, \"plan_probes\": {}, \
             \"recall_t\": {:.4}, \"shared_hits\": {}, \"shared_misses\": {}, \
             \"epochs\": {}, \"wall_ms\": {:.3}, \"throughput_tps\": {:.1}, \
             \"net_frames_in\": {}, \"net_bytes_in\": {}}}",
            json_escape(r.dataset),
            r.session,
            r.threads,
            r.batch,
            r.tuples,
            r.certain,
            r.rounds,
            r.plan_probes,
            r.recall_t,
            r.shared_hits,
            r.shared_misses,
            r.epochs,
            r.wall_ms,
            r.throughput_tps,
            r.net_frames_in,
            r.net_bytes_in,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = Args::from_env_strict(&Spec::exp("exp_net").valued(&["sessions"]));
    let mut base = ExpConfig::from_args(&args);
    if args.has("ingest") {
        eprintln!("exp_net: the wire is always stream-fed; drop --ingest");
        std::process::exit(2);
    }
    if args.has("schedule") && base.schedule == Schedule::Shard {
        eprintln!("exp_net: the service pool is steal-only; --schedule shard is unsupported");
        std::process::exit(2);
    }
    if base.compliance < 1.0 {
        eprintln!(
            "exp_net: the server-side oracle replays the shipped clean tuples verbatim; \
             --compliance below 1.0 is unsupported"
        );
        std::process::exit(2);
    }
    if !args.has("threads") {
        base.threads = BatchRepairEngine::auto_threads();
    }
    let sessions = args.usize_or("sessions", 2).max(1);
    let pinned_batch = args.has("batch").then_some(base.batch);

    let mut rows: Vec<Row> = Vec::new();
    for which in Which::BOTH {
        let w = which.build(base.dm);
        // per-connection datasets, identical to exp_service's sessions
        let datasets: Vec<Dataset> = (0..sessions)
            .map(|s| Dataset::generate(w.as_ref(), &session_dirty_config(&base, s)))
            .collect();
        let dirty: Vec<Vec<Tuple>> = datasets
            .iter()
            .map(|ds| ds.inputs.iter().map(|dt| dt.dirty.clone()).collect())
            .collect();
        let clean: Vec<Vec<Tuple>> = datasets
            .iter()
            .map(|ds| ds.inputs.iter().map(|dt| dt.clean.clone()).collect())
            .collect();
        for &threads in &thread_points(base.threads.max(1)) {
            for &batch in &batch_points(pinned_batch, &[64, 256], base.inputs) {
                let service = RepairService::from_engine(
                    build_engine(
                        w.as_ref(),
                        &ExpConfig {
                            threads,
                            batch,
                            ..base
                        },
                    ),
                    ServiceOptions {
                        threads,
                        chunk: base.chunk,
                        shared_cache: base.shared_cache,
                        depth: base.depth,
                    },
                );
                let server = RepairServer::serve_tcp(service, "127.0.0.1:0", None)
                    .expect("binding a loopback listener");
                let addr = server.local_addr().expect("TCP server has an address");

                // one client thread per connection, each streaming its
                // dataset in `batch`-sized frames
                let mut folded: Vec<_> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..sessions)
                        .map(|s| {
                            let (dirty, clean) = (&dirty[s], &clean[s]);
                            scope.spawn(move || {
                                let mut client =
                                    RepairClient::connect_tcp(addr, &format!("s{s}"), None)
                                        .expect("loopback connect");
                                for (d, c) in dirty.chunks(batch).zip(clean.chunks(batch)) {
                                    client.send_batch(d, c).expect("streaming a batch");
                                }
                                (s, client.finish().expect("clean session end"))
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            let (s, cr) = h.join().expect("client thread");
                            (s, fold_session(cr.report, datasets[s].clone(), 8))
                        })
                        .collect()
                });
                folded.sort_by_key(|(s, _)| *s);
                let report = server.shutdown();
                let wall_ms = report.wall.as_secs_f64() * 1e3;
                let throughput_tps = report.throughput();
                let epochs = report.epochs;
                // cross-check: the server's own session reports agree
                // with the client-side reconstructions (D11, both ends)
                for (s, run) in &folded {
                    let named = report
                        .sessions
                        .iter()
                        .find(|n| n.name == format!("s{s}"))
                        .expect("every connection became a session");
                    assert_eq!(named.report.stats.tuples, run.stats.tuples);
                    assert_eq!(named.report.stats.certain, run.stats.certain);
                    assert_eq!(named.report.stats.rounds, run.stats.rounds);
                    assert_eq!(named.report.stats.plan_probes, run.stats.plan_probes);
                }
                for (s, run) in folded {
                    let named = report
                        .sessions
                        .iter()
                        .find(|n| n.name == format!("s{s}"))
                        .expect("every connection became a session");
                    let last = run.metrics.last().expect("rounds >= 1");
                    rows.push(Row {
                        dataset: which.name(),
                        session: s,
                        threads,
                        batch,
                        tuples: run.stats.tuples,
                        certain: run.stats.certain,
                        rounds: run.stats.rounds,
                        plan_probes: run.stats.plan_probes,
                        recall_t: last.recall_t,
                        shared_hits: run.stats.shared_hits,
                        shared_misses: run.stats.shared_misses,
                        epochs,
                        wall_ms,
                        throughput_tps,
                        net_frames_in: named.report.stats.net.frames_in,
                        net_bytes_in: named.report.stats.net.bytes_in,
                    });
                }
            }
        }
    }

    let mut table = Table::new([
        "dataset", "session", "threads", "batch", "tuples", "certain", "rounds", "recall_t",
        "epochs", "tuples/s", "frames", "bytes",
    ]);
    for r in &rows {
        table.row([
            r.dataset.to_string(),
            r.session.to_string(),
            r.threads.to_string(),
            r.batch.to_string(),
            r.tuples.to_string(),
            r.certain.to_string(),
            r.rounds.to_string(),
            f3(r.recall_t),
            r.epochs.to_string(),
            format!("{:.0}", r.throughput_tps),
            r.net_frames_in.to_string(),
            r.net_bytes_in.to_string(),
        ]);
    }
    eprintln!(
        "exp_net: connections = {}, |Dm| = {}, |D| (session 0) = {}, d% = {:.0}, n% = {:.0}, \
         skew = {}, bdd = {}, shared cache = {}",
        sessions,
        base.dm,
        base.inputs,
        base.d * 100.0,
        base.n * 100.0,
        base.skew,
        base.use_bdd,
        base.shared_cache
    );
    eprint!("{}", table.render());
    table
        .maybe_write_csv(args.str_or("out", ""))
        .expect("writing CSV output");

    // machine-readable output on stdout — what CI archives
    print!("{}", render_json(&base, sessions, &rows));
}
