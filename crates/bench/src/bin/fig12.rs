//! Fig. 12: efficiency and scalability.
//!
//! * Fig. 12a/b — vary |Dm|: average elapsed time per interaction round
//!   for `CertainFix` (no BDD) vs `CertainFix+` (BDD suggestion cache).
//!   Both scale gracefully with master size; the BDD variant is faster.
//! * Fig. 12c/d — vary |D| (the input stream length): `CertainFix` is
//!   insensitive to |D| (tuples are independent); `CertainFix+` gets
//!   *faster* per round as |D| grows because the cache warms up — the
//!   paper's ~0.1 s plateau.
//!
//! Usage: `cargo run --release -p certainfix-bench --bin fig12
//!         [--vary dm|d_size|all] [--dm N] [--inputs N] [--out file.csv]`

use certainfix_bench::args::{Args, Spec};
use certainfix_bench::runner::{run_monitored, ExpConfig, Which};
use certainfix_bench::table::{ms, Table};

fn run_point(which: Which, cfg: &ExpConfig) -> (std::time::Duration, f64) {
    let w = which.build(cfg.dm);
    let result = run_monitored(w.as_ref(), cfg, 1);
    let hit_rate = {
        let s = result.bdd;
        let total = s.hits + s.misses;
        if total == 0 {
            0.0
        } else {
            s.hits as f64 / total as f64
        }
    };
    (result.stats.avg_round_latency(), hit_rate)
}

fn main() {
    let args = Args::from_env_strict(&Spec::exp("fig12").valued(&["vary"]));
    let base = ExpConfig::from_args(&args);
    let vary = args.str_or("vary", "all").to_string();
    let mut table = Table::new([
        "dataset",
        "sweep",
        "point",
        "CertainFix ms/round",
        "CertainFix+ ms/round",
        "BDD hit rate",
    ]);

    let sweeps: Vec<&str> = if vary == "all" {
        vec!["dm", "d_size"]
    } else {
        vec![vary.as_str()]
    };

    for which in Which::BOTH {
        for s in &sweeps {
            let points: Vec<(String, ExpConfig)> = match *s {
                "dm" => [0.5, 1.0, 1.5, 2.0, 2.5]
                    .iter()
                    .map(|&f| {
                        let dm = (base.dm as f64 * f) as usize;
                        (format!("|Dm|={dm}"), ExpConfig { dm, ..base })
                    })
                    .collect(),
                "d_size" => [10usize, 100, 1000, base.inputs.max(2000)]
                    .iter()
                    .map(|&inputs| (format!("|D|={inputs}"), ExpConfig { inputs, ..base }))
                    .collect(),
                other => panic!("unknown sweep `{other}` (use dm, d_size or all)"),
            };
            for (label, cfg) in points {
                let plain = run_point(
                    which,
                    &ExpConfig {
                        use_bdd: false,
                        ..cfg
                    },
                );
                let cached = run_point(
                    which,
                    &ExpConfig {
                        use_bdd: true,
                        ..cfg
                    },
                );
                table.row([
                    which.name().to_string(),
                    s.to_string(),
                    label,
                    ms(plain.0),
                    ms(cached.0),
                    format!("{:.2}", cached.1),
                ]);
            }
        }
    }

    println!("Fig. 12: average latency per interaction round");
    println!(
        "(defaults: d% = {:.0}, n% = {:.0}, |Dm| = {}, |D| = {})",
        base.d * 100.0,
        base.n * 100.0,
        base.dm,
        base.inputs
    );
    println!("{}", table.render());
    table
        .maybe_write_csv(args.str_or("out", ""))
        .expect("writing CSV output");
}
