//! Fig. 11: attribute-level fixes (F-measure) when varying d%, |Dm| or
//! n%, with the `IncRep` comparison.
//!
//! The shapes the paper reports:
//!
//! * F-measure grows with d% (10a/d analogue) and with |Dm| (11b/e);
//! * our F-measure is insensitive to the noise rate n% while
//!   `IncRep`'s degrades as n% grows and falls below ours (11c/f) —
//!   `IncRep` repairs more aggressively (no user interaction) but
//!   introduces errors, so its precision < 1.
//!
//! `IncRep` is evaluated once per sweep point (it has no interaction
//! rounds); our method is reported at k = 1 (to favour `IncRep`, as the
//! paper does) and at k = 4.
//!
//! Usage: `cargo run --release -p certainfix-bench --bin fig11
//!         [--vary d|dm|n|all] [--dm N] [--inputs N] [--out file.csv]`

use certainfix_bench::args::{Args, Spec};
use certainfix_bench::runner::{run_increp, run_monitored, ExpConfig, Which};
use certainfix_bench::table::{f3, Table};

fn sweep(which: Which, base: &ExpConfig, vary: &str, table: &mut Table) {
    let points: Vec<(String, ExpConfig)> = match vary {
        "d" => [0.1, 0.2, 0.3, 0.4, 0.5]
            .iter()
            .map(|&d| (format!("d={d:.1}"), ExpConfig { d, ..*base }))
            .collect(),
        "dm" => [0.5, 1.0, 1.5, 2.0, 2.5]
            .iter()
            .map(|&f| {
                let dm = (base.dm as f64 * f) as usize;
                (format!("|Dm|={dm}"), ExpConfig { dm, ..*base })
            })
            .collect(),
        "n" => [0.1, 0.2, 0.3, 0.4, 0.5]
            .iter()
            .map(|&n| (format!("n={n:.1}"), ExpConfig { n, ..*base }))
            .collect(),
        other => panic!("unknown sweep `{other}` (use d, dm, n or all)"),
    };
    for (label, cfg) in points {
        let w = which.build(cfg.dm);
        let result = run_monitored(w.as_ref(), &cfg, 4);
        let (increp_counts, _) = run_increp(w.as_ref(), &result.dataset);
        table.row([
            which.name().to_string(),
            vary.to_string(),
            label,
            f3(result.at_round(1).f_measure),
            f3(result.at_round(4).f_measure),
            f3(increp_counts.f_measure()),
            f3(increp_counts.precision()),
        ]);
    }
}

fn main() {
    let args = Args::from_env_strict(&Spec::exp("fig11").valued(&["vary"]));
    let base = ExpConfig::from_args(&args);
    let vary = args.str_or("vary", "all").to_string();
    let mut table = Table::new([
        "dataset", "sweep", "point", "F k=1", "F k=4", "F IncRep", "P IncRep",
    ]);

    let sweeps: Vec<&str> = if vary == "all" {
        vec!["d", "dm", "n"]
    } else {
        vec![vary.as_str()]
    };
    for which in Which::BOTH {
        for s in &sweeps {
            sweep(which, &base, s, &mut table);
        }
    }

    println!("Fig. 11: attribute-level F-measure, CertainFix vs IncRep");
    println!(
        "(defaults: d% = {:.0}, |Dm| = {}, n% = {:.0}, |D| = {}; our precision is 1.0 by construction)",
        base.d * 100.0,
        base.dm,
        base.n * 100.0,
        base.inputs
    );
    println!("{}", table.render());
    table
        .maybe_write_csv(args.str_or("out", ""))
        .expect("writing CSV output");
}
