//! Streaming-ingest sweep for the session API: producer batch size ×
//! channel depth × thread count on both workloads.
//!
//! Every point generates the same dirty stream, then a producer thread
//! feeds it in `batch`-sized batches through a bounded channel of
//! `depth` in-flight batches while a `RepairSession` drains it with
//! `threads` workers ([`run_stream`]) — the paper's point-of-entry
//! monitoring shape, with real backpressure. Rows report wall-clock
//! throughput, merged statistics, final-round recall, shared-cache
//! traffic, and the interner watermark; for plain `CertainFix` with
//! the caches off the deterministic count fields are identical at
//! every `(batch, depth, threads)` point (the batching never perturbs
//! an outcome).
//!
//! A machine-readable JSON document goes to **stdout** (CI's
//! `schedule-determinism` job archives it as the `BENCH_stream`
//! artifact); the human-readable table goes to stderr.
//!
//! Usage: `cargo run --release -p certainfix-bench --bin exp_stream --
//!         [--dm N] [--inputs N] [--threads T] [--batch B] [--depth D]
//!         [--schedule shard|steal] [--shared-cache on|off] [--skew F]
//!         [--d F] [--n F] [--seed S] [--out file.csv] [--no-bdd]`
//!
//! `--threads T` caps the swept thread counts (0 = this machine's
//! available parallelism); `--batch B` / `--depth D` pin a single
//! producer batch size / channel depth instead of the default sweeps.
//! This binary is stream-only: `--ingest batch` exits 2 (use
//! `exp_scale` for the batch baseline).

use std::fmt::Write as _;

use certainfix_bench::args::{Args, Spec};
use certainfix_bench::runner::{build_engine, run_stream, ExpConfig, Ingest, Which};
use certainfix_bench::sweep::{batch_points, json_escape, thread_points};
use certainfix_bench::table::{f3, Table};
use certainfix_core::BatchRepairEngine;
use certainfix_datagen::Dataset;

/// One measured sweep point.
struct Row {
    dataset: &'static str,
    threads: usize,
    batch: usize,
    depth: usize,
    tuples: u64,
    certain: u64,
    rounds: u64,
    elapsed_ms: f64,
    wall_ms: f64,
    throughput_tps: f64,
    recall_t: f64,
    interner_syms: u64,
    shared_hits: u64,
    shared_misses: u64,
}

fn depth_points(pinned: Option<usize>) -> Vec<usize> {
    match pinned {
        Some(d) => vec![d.max(1)],
        None => vec![1, 2, 8],
    }
}

fn render_json(base: &ExpConfig, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"exp_stream\",");
    let _ = writeln!(out, "  \"ingest\": \"stream\",");
    let _ = writeln!(out, "  \"dm\": {},", base.dm);
    let _ = writeln!(out, "  \"inputs\": {},", base.inputs);
    let _ = writeln!(out, "  \"d\": {},", base.d);
    let _ = writeln!(out, "  \"n\": {},", base.n);
    let _ = writeln!(out, "  \"skew\": {},", base.skew);
    let _ = writeln!(out, "  \"use_bdd\": {},", base.use_bdd);
    let _ = writeln!(out, "  \"threads\": {},", base.threads.max(1));
    let _ = writeln!(out, "  \"schedule\": \"{}\",", base.schedule.name());
    let _ = writeln!(out, "  \"shared_cache\": {},", base.shared_cache);
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"dataset\": \"{}\", \"threads\": {}, \"batch\": {}, \"depth\": {}, \
             \"tuples\": {}, \"certain\": {}, \"rounds\": {}, \"elapsed_ms\": {:.3}, \
             \"wall_ms\": {:.3}, \"throughput_tps\": {:.1}, \"recall_t\": {:.4}, \
             \"interner_syms\": {}, \"shared_hits\": {}, \"shared_misses\": {}}}",
            json_escape(r.dataset),
            r.threads,
            r.batch,
            r.depth,
            r.tuples,
            r.certain,
            r.rounds,
            r.elapsed_ms,
            r.wall_ms,
            r.throughput_tps,
            r.recall_t,
            r.interner_syms,
            r.shared_hits,
            r.shared_misses,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = Args::from_env_strict(&Spec::exp("exp_stream"));
    let mut base = ExpConfig::from_args(&args);
    if base.ingest == Ingest::Batch && args.has("ingest") {
        // this binary *is* the streaming sweep — silently running the
        // stream path under an explicit `--ingest batch` would mislabel
        // every comparison built on it
        eprintln!("exp_stream: this binary is stream-only; for `--ingest batch` use exp_scale");
        std::process::exit(2);
    }
    if !args.has("threads") {
        base.threads = BatchRepairEngine::auto_threads();
    }
    let pinned_batch = args.has("batch").then_some(base.batch);
    let pinned_depth = args.has("depth").then_some(base.depth);

    let mut rows: Vec<Row> = Vec::new();
    for which in Which::BOTH {
        let w = which.build(base.dm);
        for &threads in &thread_points(base.threads.max(1)) {
            for &batch in &batch_points(pinned_batch, &[64, 256, 1024], base.inputs) {
                for &depth in &depth_points(pinned_depth) {
                    let cfg = ExpConfig {
                        threads,
                        batch,
                        depth,
                        ..base
                    };
                    // a fresh engine per point: the engine-lifetime
                    // shared cache stays warm across the batches of
                    // one stream but must not leak between points
                    let engine = build_engine(w.as_ref(), &cfg);
                    let dataset = Dataset::generate(w.as_ref(), &cfg.dirty_config());
                    let result = run_stream(&engine, dataset, &cfg, 8);
                    let last = result.metrics.last().expect("rounds >= 1");
                    let wall_ms = result.wall.as_secs_f64() * 1e3;
                    rows.push(Row {
                        dataset: which.name(),
                        threads,
                        batch,
                        depth,
                        tuples: result.stats.tuples,
                        certain: result.stats.certain,
                        rounds: result.stats.rounds,
                        elapsed_ms: result.stats.elapsed.as_secs_f64() * 1e3,
                        wall_ms,
                        throughput_tps: if wall_ms > 0.0 {
                            result.stats.tuples as f64 / (wall_ms / 1e3)
                        } else {
                            0.0
                        },
                        recall_t: last.recall_t,
                        interner_syms: result.stats.interner_syms,
                        shared_hits: result.stats.shared_hits,
                        shared_misses: result.stats.shared_misses,
                    });
                }
            }
        }
    }

    let mut table = Table::new([
        "dataset", "threads", "batch", "depth", "tuples", "certain", "wall ms", "tuples/s",
        "recall_t", "sh_hits",
    ]);
    for r in &rows {
        table.row([
            r.dataset.to_string(),
            r.threads.to_string(),
            r.batch.to_string(),
            r.depth.to_string(),
            r.tuples.to_string(),
            r.certain.to_string(),
            format!("{:.1}", r.wall_ms),
            format!("{:.0}", r.throughput_tps),
            f3(r.recall_t),
            r.shared_hits.to_string(),
        ]);
    }
    eprintln!(
        "exp_stream: |Dm| = {}, |D| = {}, d% = {:.0}, n% = {:.0}, skew = {}, bdd = {}, \
         schedule = {}, shared cache = {}",
        base.dm,
        base.inputs,
        base.d * 100.0,
        base.n * 100.0,
        base.skew,
        base.use_bdd,
        base.schedule.name(),
        base.shared_cache
    );
    eprint!("{}", table.render());
    table
        .maybe_write_csv(args.str_or("out", ""))
        .expect("writing CSV output");

    // machine-readable output on stdout — what CI archives
    print!("{}", render_json(&base, &rows));
}
