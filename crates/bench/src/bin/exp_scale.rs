//! Scaling sweep for the parallel batch-repair engine: thread count ×
//! batch size on both workloads, under either scheduler.
//!
//! For every `(dataset, threads, batch)` point the dirty stream is
//! generated in batches ([`Dataset::batches`]) and each batch is
//! repaired by [`BatchRepairEngine`] with that many workers; the row
//! reports wall-clock throughput, merged statistics, recall at the
//! final round, shared-cache traffic, and the interner watermark.
//!
//! A machine-readable JSON document goes to **stdout** (this is what
//! CI's smoke and schedule-determinism jobs archive as
//! `BENCH_*.json`); the human-readable table goes to stderr.
//!
//! Usage: `cargo run --release -p certainfix-bench --bin exp_scale --
//!         [--dm N] [--inputs N] [--threads T] [--batch B]
//!         [--ingest batch|stream] [--depth D]
//!         [--schedule shard|steal] [--shared-cache on|off] [--skew F]
//!         [--d F] [--n F] [--seed S] [--out file.csv] [--no-bdd]`
//!
//! `--threads T` caps the swept thread counts (1, 2, 4, … up to `T`;
//! 0 = this machine's available parallelism, echoed *resolved* in the
//! JSON output — the literal 0 never appears there). `--batch B` pins
//! a single batch size instead of the default sweep. `--ingest stream`
//! feeds each row's batches through a bounded channel (`--depth D`
//! in-flight batches) drained by a `RepairSession` instead of calling
//! the engine batch-by-batch; for plain `CertainFix` with the caches
//! off — at the default full `--compliance` — the merged metric counts
//! are bit-identical either way (the CI `schedule-determinism` job
//! asserts exactly that). With partial compliance the two modes seed
//! the simulated users differently (batch mode keys them to each
//! sub-batch's decorrelated seed, stream mode to the global stream
//! index), so their counts may legitimately differ.

use std::fmt::Write as _;

use certainfix_bench::args::{Args, Spec};
use certainfix_bench::runner::{build_engine, run_batch, run_stream, ExpConfig, Ingest, Which};
use certainfix_bench::sweep::{batch_points, json_escape, thread_points};
use certainfix_bench::table::{f3, Table};
use certainfix_core::BatchRepairEngine;
use certainfix_datagen::{Dataset, DirtyTuple};

/// One measured sweep point.
struct Row {
    dataset: &'static str,
    threads: usize,
    batch: usize,
    tuples: u64,
    certain: u64,
    rounds: u64,
    elapsed_ms: f64,
    wall_ms: f64,
    throughput_tps: f64,
    recall_t: f64,
    interner_syms: u64,
    shared_hits: u64,
    shared_misses: u64,
}

fn render_json(base: &ExpConfig, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"exp_scale\",");
    let _ = writeln!(out, "  \"dm\": {},", base.dm);
    let _ = writeln!(out, "  \"inputs\": {},", base.inputs);
    let _ = writeln!(out, "  \"d\": {},", base.d);
    let _ = writeln!(out, "  \"n\": {},", base.n);
    let _ = writeln!(out, "  \"skew\": {},", base.skew);
    let _ = writeln!(out, "  \"use_bdd\": {},", base.use_bdd);
    // the *resolved* thread cap: `--threads 0` ("all cores") is echoed
    // as the detected core count, never as a literal 0
    let _ = writeln!(out, "  \"threads\": {},", base.threads.max(1));
    let _ = writeln!(out, "  \"schedule\": \"{}\",", base.schedule.name());
    let _ = writeln!(out, "  \"shared_cache\": {},", base.shared_cache);
    let _ = writeln!(out, "  \"chunk\": {},", base.chunk);
    let _ = writeln!(out, "  \"ingest\": \"{}\",", base.ingest.name());
    let _ = writeln!(out, "  \"depth\": {},", base.depth);
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"dataset\": \"{}\", \"threads\": {}, \"batch\": {}, \"tuples\": {}, \
             \"certain\": {}, \"rounds\": {}, \"elapsed_ms\": {:.3}, \"wall_ms\": {:.3}, \
             \"throughput_tps\": {:.1}, \"recall_t\": {:.4}, \"interner_syms\": {}, \
             \"shared_hits\": {}, \"shared_misses\": {}}}",
            json_escape(r.dataset),
            r.threads,
            r.batch,
            r.tuples,
            r.certain,
            r.rounds,
            r.elapsed_ms,
            r.wall_ms,
            r.throughput_tps,
            r.recall_t,
            r.interner_syms,
            r.shared_hits,
            r.shared_misses,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let spec = Spec::exp("exp_scale");
    let args = Args::from_env_strict(&spec);
    let mut base = ExpConfig::from_args(&args);
    if !args.has("threads") {
        base.threads = BatchRepairEngine::auto_threads();
    }
    let pinned_batch = args.has("batch").then(|| args.usize_or("batch", 1024));

    let mut rows: Vec<Row> = Vec::new();
    for which in Which::BOTH {
        let w = which.build(base.dm);
        for &threads in &thread_points(base.threads.max(1)) {
            for &batch in &batch_points(pinned_batch, &[256, 1024, base.inputs], base.inputs) {
                let cfg = ExpConfig { threads, ..base };
                // a fresh engine per sweep point: its lifetime shared
                // suggestion cache stays warm *across the batches of
                // one row* (the streaming setting) but must not leak
                // between rows, or the later thread counts would be
                // measured against a pool the threads=1 row paid to
                // fill and the scaling comparison would conflate
                // parallelism with cache warmth
                let engine = build_engine(w.as_ref(), &cfg);
                let mut tuples = 0u64;
                let mut certain = 0u64;
                let mut rounds = 0u64;
                let mut elapsed_ms = 0.0f64;
                let mut wall_ms = 0.0f64;
                let mut recall_t = 0.0f64;
                let mut interner_syms = 0u64;
                let mut shared_hits = 0u64;
                let mut shared_misses = 0u64;
                let mut corrected = 0usize;
                let mut erroneous = 0usize;
                // both ingest modes consume the same generated stream:
                // the decorrelated per-batch substreams of
                // `Dataset::batches`, repaired 8 rounds deep (8 covers
                // every observed interaction depth, so the last metric
                // row is the final, plateaued recall); only the
                // partial-compliance oracle seeds differ between the
                // modes (see the module docs)
                let results = match base.ingest {
                    Ingest::Batch => Dataset::batches(w.as_ref(), &cfg.dirty_config(), batch)
                        .map(|ds| run_batch(&engine, ds, &cfg, 8))
                        .collect::<Vec<_>>(),
                    Ingest::Stream => {
                        // materialize the identical stream, then drain
                        // it through the bounded channel in
                        // `batch`-sized producer batches
                        let inputs: Vec<DirtyTuple> =
                            Dataset::batches(w.as_ref(), &cfg.dirty_config(), batch)
                                .flat_map(|ds| ds.inputs)
                                .collect();
                        let ds = Dataset {
                            inputs,
                            config: cfg.dirty_config(),
                        };
                        let stream_cfg = ExpConfig { batch, ..cfg };
                        vec![run_stream(&engine, ds, &stream_cfg, 8)]
                    }
                };
                for result in results {
                    let last = result.metrics.last().expect("rounds >= 1");
                    tuples += result.stats.tuples;
                    certain += result.stats.certain;
                    rounds += result.stats.rounds;
                    elapsed_ms += result.stats.elapsed.as_secs_f64() * 1e3;
                    wall_ms += result.wall.as_secs_f64() * 1e3;
                    interner_syms = interner_syms.max(result.stats.interner_syms);
                    shared_hits += result.stats.shared_hits;
                    shared_misses += result.stats.shared_misses;
                    corrected += last.corrected_tuples;
                    erroneous += last.erroneous_tuples;
                }
                if erroneous > 0 {
                    recall_t = corrected as f64 / erroneous as f64;
                }
                let throughput_tps = if wall_ms > 0.0 {
                    tuples as f64 / (wall_ms / 1e3)
                } else {
                    0.0
                };
                rows.push(Row {
                    dataset: which.name(),
                    threads,
                    batch,
                    tuples,
                    certain,
                    rounds,
                    elapsed_ms,
                    wall_ms,
                    throughput_tps,
                    recall_t,
                    interner_syms,
                    shared_hits,
                    shared_misses,
                });
            }
        }
    }

    let mut table = Table::new([
        "dataset", "threads", "batch", "tuples", "certain", "wall ms", "tuples/s", "recall_t",
        "sh_hits", "interner",
    ]);
    for r in &rows {
        table.row([
            r.dataset.to_string(),
            r.threads.to_string(),
            r.batch.to_string(),
            r.tuples.to_string(),
            r.certain.to_string(),
            format!("{:.1}", r.wall_ms),
            format!("{:.0}", r.throughput_tps),
            f3(r.recall_t),
            r.shared_hits.to_string(),
            r.interner_syms.to_string(),
        ]);
    }
    eprintln!(
        "exp_scale: |Dm| = {}, |D| = {}, d% = {:.0}, n% = {:.0}, skew = {}, bdd = {}, \
         schedule = {}, shared cache = {}, ingest = {}",
        base.dm,
        base.inputs,
        base.d * 100.0,
        base.n * 100.0,
        base.skew,
        base.use_bdd,
        base.schedule.name(),
        base.shared_cache,
        base.ingest.name()
    );
    eprint!("{}", table.render());
    table
        .maybe_write_csv(args.str_or("out", ""))
        .expect("writing CSV output");

    // machine-readable output on stdout — what CI archives
    print!("{}", render_json(&base, &rows));
}
