//! Sweep-point generation and JSON plumbing shared by the sweep
//! binaries (`exp_scale`, `exp_stream`).

/// Doubling thread counts up to (and always including) `cap`:
/// `1, 2, 4, …, cap`.
pub fn thread_points(cap: usize) -> Vec<usize> {
    let mut points = Vec::new();
    let mut t = 1;
    while t < cap {
        points.push(t);
        t *= 2;
    }
    points.push(cap);
    points
}

/// Batch sizes to sweep: the pinned size alone when given, otherwise
/// `defaults` — each clamped to `1..=inputs`, sorted, deduplicated.
pub fn batch_points(pinned: Option<usize>, defaults: &[usize], inputs: usize) -> Vec<usize> {
    let mut points: Vec<usize> = match pinned {
        Some(b) => vec![b.clamp(1, inputs.max(1))],
        None => defaults
            .iter()
            .map(|&b| b.clamp(1, inputs.max(1)))
            .collect(),
    };
    points.sort_unstable();
    points.dedup();
    points
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_points_double_up_to_the_cap() {
        assert_eq!(thread_points(1), vec![1]);
        assert_eq!(thread_points(4), vec![1, 2, 4]);
        assert_eq!(thread_points(6), vec![1, 2, 4, 6]);
    }

    #[test]
    fn batch_points_pin_clamp_and_dedup() {
        assert_eq!(batch_points(Some(500), &[64, 256], 100), vec![100]);
        assert_eq!(batch_points(None, &[256, 1024, 100], 100), vec![100]);
        assert_eq!(
            batch_points(None, &[64, 256, 1024], 500),
            vec![64, 256, 500]
        );
        assert_eq!(batch_points(Some(0), &[], 100), vec![1]);
        assert_eq!(
            batch_points(None, &[64], 0),
            vec![1],
            "empty stream still sweeps"
        );
    }

    #[test]
    fn json_escape_handles_quotes_and_backslashes() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("plain"), "plain");
    }
}
