//! A tiny `--key value` argument parser for the experiment binaries.
//!
//! No external CLI crate is pulled in; the experiments only need a
//! handful of numeric flags. Each binary declares its accepted flag
//! set as a [`Spec`]; parsing rejects unknown flags, valued flags
//! without a value, and stray positional arguments instead of silently
//! running the experiment with defaults (the ROADMAP's typo'd-flag
//! trap). [`Args::from_env_strict`] prints a usage line and exits with
//! status 2 on any parse error.

use std::collections::BTreeMap;
use std::fmt;

/// The flag set one experiment binary accepts.
#[derive(Debug, Clone)]
pub struct Spec {
    bin: &'static str,
    /// Flags that require a value (`--dm 5000`).
    valued: Vec<&'static str>,
    /// Presence-only flags (`--no-bdd`).
    boolean: Vec<&'static str>,
}

impl Spec {
    /// An empty spec for `bin` (shown in the usage line).
    pub fn new(bin: &'static str) -> Spec {
        Spec {
            bin,
            valued: Vec::new(),
            boolean: Vec::new(),
        }
    }

    /// The flags every `ExpConfig`-driven binary shares: `--dm`,
    /// `--inputs`, `--d`, `--n`, `--seed`, `--compliance`,
    /// `--initial`, `--threads`, `--schedule {shard,steal}`,
    /// `--shared-cache {on,off}`, `--skew`, `--free-text`,
    /// `--ingest {batch,stream}`, `--batch`, `--depth`,
    /// `--chunk` (work-stealing chunk = block-probe size; 0 = auto),
    /// `--out`, and the boolean `--no-bdd`.
    pub fn exp(bin: &'static str) -> Spec {
        Spec::new(bin)
            .valued(&[
                "dm",
                "inputs",
                "d",
                "n",
                "seed",
                "compliance",
                "initial",
                "threads",
                "schedule",
                "shared-cache",
                "skew",
                "free-text",
                "ingest",
                "batch",
                "depth",
                "chunk",
                "out",
            ])
            .boolean(&["no-bdd"])
    }

    /// Add valued flags.
    pub fn valued(mut self, names: &[&'static str]) -> Spec {
        self.valued.extend_from_slice(names);
        self
    }

    /// Add boolean flags.
    pub fn boolean(mut self, names: &[&'static str]) -> Spec {
        self.boolean.extend_from_slice(names);
        self
    }

    fn takes_value(&self, name: &str) -> Option<bool> {
        if self.valued.contains(&name) {
            Some(true)
        } else if self.boolean.contains(&name) {
            Some(false)
        } else {
            None
        }
    }

    /// One-line usage summary, e.g.
    /// `usage: fig9 [--dm <v>] [--inputs <v>] [--no-bdd]`.
    pub fn usage_line(&self) -> String {
        let mut line = format!("usage: {}", self.bin);
        for v in &self.valued {
            line.push_str(&format!(" [--{v} <v>]"));
        }
        for b in &self.boolean {
            line.push_str(&format!(" [--{b}]"));
        }
        line
    }
}

/// A rejected command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// A flag the binary does not declare.
    Unknown(String),
    /// A valued flag with no value following it.
    MissingValue(String),
    /// A token that is not a flag (the binaries take no positionals).
    Unexpected(String),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::Unknown(flag) => write!(f, "unknown flag `--{flag}`"),
            ArgsError::MissingValue(flag) => write!(f, "flag `--{flag}` requires a value"),
            ArgsError::Unexpected(tok) => write!(f, "unexpected argument `{tok}`"),
        }
    }
}

impl std::error::Error for ArgsError {}

/// Parsed arguments: flag → value (boolean flags store "").
#[derive(Debug, Default, Clone)]
pub struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Lenient parse (no spec): every `--flag [value]` pair is kept,
    /// non-flag tokens are skipped. Used by unit tests and library
    /// callers that assemble flag maps programmatically; the binaries
    /// go through [`Args::from_env_strict`].
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Args {
        let mut flags = BTreeMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap(),
                    _ => String::new(),
                };
                flags.insert(name.to_string(), value);
            }
        }
        Args { flags }
    }

    /// Strict parse against a declared flag set.
    ///
    /// * an undeclared `--flag` is [`ArgsError::Unknown`];
    /// * a declared valued flag at the end of the line or followed by
    ///   another `--flag` is [`ArgsError::MissingValue`];
    /// * a non-flag token is [`ArgsError::Unexpected`] (boolean flags
    ///   do not consume the next token, so `--no-bdd 5` rejects `5`).
    pub fn parse_strict<I: IntoIterator<Item = String>>(
        args: I,
        spec: &Spec,
    ) -> Result<Args, ArgsError> {
        let mut flags = BTreeMap::new();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(ArgsError::Unexpected(arg));
            };
            match spec.takes_value(name) {
                None => return Err(ArgsError::Unknown(name.to_string())),
                Some(false) => {
                    flags.insert(name.to_string(), String::new());
                }
                Some(true) => match iter.next() {
                    Some(v) if !v.starts_with("--") => {
                        flags.insert(name.to_string(), v);
                    }
                    _ => return Err(ArgsError::MissingValue(name.to_string())),
                },
            }
        }
        Ok(Args { flags })
    }

    /// Parse the process's own arguments against `spec`; on error,
    /// print the error and the usage line to stderr and exit 2.
    pub fn from_env_strict(spec: &Spec) -> Args {
        match Args::parse_strict(std::env::args().skip(1), spec) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("{}: {e}", spec.bin);
                eprintln!("{}", spec.usage_line());
                std::process::exit(2);
            }
        }
    }

    /// Raw flag value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// `true` iff the flag was present (with or without a value).
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Typed lookup with default.
    pub fn usize_or(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Typed lookup with default.
    pub fn u64_or(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Typed lookup with default.
    pub fn f64_or(&self, name: &str, default: f64) -> f64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// String lookup with default.
    pub fn str_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.get(name).filter(|v| !v.is_empty()).unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    fn strict(s: &str, spec: &Spec) -> Result<Args, ArgsError> {
        Args::parse_strict(s.split_whitespace().map(String::from), spec)
    }

    fn spec() -> Spec {
        Spec::new("test-bin")
            .valued(&["dm", "d", "vary"])
            .boolean(&["quiet", "no-bdd"])
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = parse("--dm 5000 --d 0.3 --vary n --quiet");
        assert_eq!(a.usize_or("dm", 0), 5000);
        assert_eq!(a.f64_or("d", 0.0), 0.3);
        assert_eq!(a.str_or("vary", "d"), "n");
        assert!(a.has("quiet"));
        assert!(!a.has("missing"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("");
        assert_eq!(a.usize_or("dm", 10_000), 10_000);
        assert_eq!(a.u64_or("seed", 42), 42);
        assert_eq!(a.str_or("vary", "d"), "d");
    }

    #[test]
    fn flag_followed_by_flag_has_empty_value() {
        let a = parse("--bdd --dm 10");
        assert!(a.has("bdd"));
        assert_eq!(a.get("bdd"), Some(""));
        assert_eq!(a.usize_or("dm", 0), 10);
    }

    #[test]
    fn bad_numbers_fall_back() {
        let a = parse("--dm abc");
        assert_eq!(a.usize_or("dm", 7), 7);
    }

    #[test]
    fn strict_accepts_declared_flags() {
        let a = strict("--dm 5000 --quiet --d -0.5 --vary n", &spec()).unwrap();
        assert_eq!(a.usize_or("dm", 0), 5000);
        assert_eq!(a.f64_or("d", 0.0), -0.5, "negative values are values");
        assert!(a.has("quiet"));
        let empty = strict("", &spec()).unwrap();
        assert!(!empty.has("dm"));
    }

    #[test]
    fn strict_rejects_unknown_flags() {
        assert_eq!(
            strict("--dm 10 --dmm 20", &spec()).unwrap_err(),
            ArgsError::Unknown("dmm".into())
        );
        // a typo'd boolean is equally fatal
        assert_eq!(
            strict("--no-bdd --no-bddd", &spec()).unwrap_err(),
            ArgsError::Unknown("no-bddd".into())
        );
    }

    #[test]
    fn strict_rejects_missing_values() {
        // valued flag at the end of the line
        assert_eq!(
            strict("--dm", &spec()).unwrap_err(),
            ArgsError::MissingValue("dm".into())
        );
        // valued flag swallowed by the next flag
        assert_eq!(
            strict("--dm --quiet", &spec()).unwrap_err(),
            ArgsError::MissingValue("dm".into())
        );
    }

    #[test]
    fn strict_bare_flag_semantics() {
        // bare boolean flag: fine
        let a = strict("--quiet", &spec()).unwrap();
        assert!(a.has("quiet"));
        assert_eq!(a.get("quiet"), Some(""));
        // boolean flags do not consume values: the trailing token is a
        // stray positional
        assert_eq!(
            strict("--quiet 5", &spec()).unwrap_err(),
            ArgsError::Unexpected("5".into())
        );
        // and plain positionals are rejected outright
        assert_eq!(
            strict("fig9.csv", &spec()).unwrap_err(),
            ArgsError::Unexpected("fig9.csv".into())
        );
    }

    #[test]
    fn usage_line_lists_the_spec() {
        let u = spec().usage_line();
        assert!(u.starts_with("usage: test-bin"));
        assert!(u.contains("[--dm <v>]"));
        assert!(u.contains("[--quiet]"));
    }

    #[test]
    fn exp_spec_covers_the_shared_flags() {
        let s = Spec::exp("x");
        for f in [
            "dm",
            "inputs",
            "d",
            "n",
            "seed",
            "compliance",
            "threads",
            "schedule",
            "shared-cache",
            "skew",
            "free-text",
            "ingest",
            "batch",
            "depth",
            "chunk",
        ] {
            assert_eq!(s.takes_value(f), Some(true), "{f}");
        }
        assert_eq!(s.takes_value("no-bdd"), Some(false));
        assert_eq!(s.takes_value("nope"), None);
    }

    #[test]
    fn errors_display_the_flag() {
        assert_eq!(
            ArgsError::Unknown("dmm".into()).to_string(),
            "unknown flag `--dmm`"
        );
        assert_eq!(
            ArgsError::MissingValue("dm".into()).to_string(),
            "flag `--dm` requires a value"
        );
        assert_eq!(
            ArgsError::Unexpected("x".into()).to_string(),
            "unexpected argument `x`"
        );
    }
}
