//! A tiny `--key value` argument parser for the experiment binaries.
//!
//! No external CLI crate is pulled in; the experiments only need a
//! handful of numeric flags (`--dm`, `--inputs`, `--d`, `--n`,
//! `--seed`, `--vary`, `--out`, `--compliance`).

use std::collections::BTreeMap;

/// Parsed arguments: flag → value (`--flag` without a value stores "").
#[derive(Debug, Default, Clone)]
pub struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parse from an iterator of arguments (excluding the binary name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Args {
        let mut flags = BTreeMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap(),
                    _ => String::new(),
                };
                flags.insert(name.to_string(), value);
            }
        }
        Args { flags }
    }

    /// Parse the process's own arguments.
    pub fn from_env() -> Args {
        Args::parse(std::env::args().skip(1))
    }

    /// Raw flag value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// `true` iff the flag was present (with or without a value).
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Typed lookup with default.
    pub fn usize_or(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Typed lookup with default.
    pub fn u64_or(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Typed lookup with default.
    pub fn f64_or(&self, name: &str, default: f64) -> f64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// String lookup with default.
    pub fn str_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.get(name).filter(|v| !v.is_empty()).unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = parse("--dm 5000 --d 0.3 --vary n --quiet");
        assert_eq!(a.usize_or("dm", 0), 5000);
        assert_eq!(a.f64_or("d", 0.0), 0.3);
        assert_eq!(a.str_or("vary", "d"), "n");
        assert!(a.has("quiet"));
        assert!(!a.has("missing"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("");
        assert_eq!(a.usize_or("dm", 10_000), 10_000);
        assert_eq!(a.u64_or("seed", 42), 42);
        assert_eq!(a.str_or("vary", "d"), "d");
    }

    #[test]
    fn flag_followed_by_flag_has_empty_value() {
        let a = parse("--bdd --dm 10");
        assert!(a.has("bdd"));
        assert_eq!(a.get("bdd"), Some(""));
        assert_eq!(a.usize_or("dm", 0), 10);
    }

    #[test]
    fn bad_numbers_fall_back() {
        let a = parse("--dm abc");
        assert_eq!(a.usize_or("dm", 7), 7);
    }
}
