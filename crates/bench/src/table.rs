//! Plain-text tables and CSV output for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// An aligned text table with an optional CSV mirror.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        debug_assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render CSV (comma-separated; cells containing commas or quotes
    /// are quoted).
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV mirror if `path` is non-empty; create parent dirs.
    pub fn maybe_write_csv(&self, path: &str) -> io::Result<()> {
        if path.is_empty() {
            return Ok(());
        }
        if let Some(parent) = Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        fs::write(path, self.to_csv())
    }
}

/// Format a float with 3 decimals (the paper's plot precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a duration in milliseconds with 3 decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["k", "recall"]);
        t.row(["1", "0.300"]).row(["2", "0.950"]);
        let s = t.render();
        assert!(s.contains("k  recall"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn empty_path_is_noop() {
        let t = Table::new(["a"]);
        assert!(t.maybe_write_csv("").is_ok());
    }

    #[test]
    fn writes_csv_file() {
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        let path = std::env::temp_dir().join("certainfix_table_test.csv");
        t.maybe_write_csv(path.to_str().unwrap()).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a\n1\n");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.5), "0.500");
        assert_eq!(ms(std::time::Duration::from_micros(1500)), "1.500");
    }
}
