//! Experiment harness for the paper's evaluation (Sect. 6).
//!
//! Each binary in `src/bin/` regenerates one table or figure; shared
//! plumbing (CLI parsing, CSV output, experiment runners) lives here.

pub mod args;
pub mod runner;
pub mod sweep;
pub mod table;
