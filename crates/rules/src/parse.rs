//! A compact text DSL for editing rules.
//!
//! One rule template per line; `#` starts a comment. The syntax mirrors
//! how the paper writes rule *families* (e.g. "eR1 is expressed as three
//! editing rules of the form ϕ1, for B1 ranging over {AC, str, city}"):
//! a line may list several `set` targets and expands into one
//! [`EditingRule`] per target.
//!
//! ```text
//! # ϕ1..ϕ3:  ((zip, zip) → (B, B), tp = ())     for B ∈ {AC, str, city}
//! phi1: match zip ~ zip set AC := AC, str := str, city := city
//!
//! # ϕ4, ϕ5:  ((phn, Mphn) → ..., tp[type] = (2))
//! phi2: match phn ~ Mphn set fn := FN, ln := LN when type = 2
//!
//! # ϕ6..ϕ8:  with a negated pattern cell
//! phi3: match AC ~ AC, phn ~ Hphn set str := str when type = 1, AC != '0800'
//! ```
//!
//! * `match x ~ xm, ...` — the key pairs `(X, Xm)`;
//! * `set b := bm, ...` — the fix targets; a line with `n` targets
//!   yields `n` rules named `name` (single target) or `name.b`
//!   (multiple);
//! * `when a = v, b != v, ...` — optional pattern conditions. Values are
//!   single-quoted strings or bare integers; bare words are strings.

use std::sync::Arc;

use certainfix_relation::{Schema, Value};

use crate::error::RuleError;
use crate::rule::EditingRule;
use crate::ruleset::RuleSet;

/// Parse a DSL document into a [`RuleSet`] over `(R, Rm)`.
pub fn parse_rules(src: &str, r: &Arc<Schema>, rm: &Arc<Schema>) -> Result<RuleSet, RuleError> {
    let mut set = RuleSet::new(r.clone(), rm.clone());
    for (lineno, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        for rule in parse_line(line, lineno + 1, r, rm)? {
            set.push(rule)?;
        }
    }
    Ok(set)
}

fn strip_comment(line: &str) -> &str {
    // `#` inside a quoted literal does not start a comment.
    let mut in_quote = false;
    for (i, c) in line.char_indices() {
        match c {
            '\'' => in_quote = !in_quote,
            '#' if !in_quote => return &line[..i],
            _ => {}
        }
    }
    line
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Colon,
    Comma,
    Tilde,
    Assign, // :=
    Eq,     // =
    Neq,    // !=
}

fn err(line: usize, msg: impl Into<String>) -> RuleError {
    RuleError::Parse {
        line,
        msg: msg.into(),
    }
}

fn tokenize(line: &str, lineno: usize) -> Result<Vec<Tok>, RuleError> {
    let mut toks = Vec::new();
    let mut chars = line.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            ',' => {
                chars.next();
                toks.push(Tok::Comma);
            }
            '~' => {
                chars.next();
                toks.push(Tok::Tilde);
            }
            ':' => {
                chars.next();
                if chars.peek().map(|&(_, c)| c) == Some('=') {
                    chars.next();
                    toks.push(Tok::Assign);
                } else {
                    toks.push(Tok::Colon);
                }
            }
            '=' => {
                chars.next();
                toks.push(Tok::Eq);
            }
            '!' => {
                chars.next();
                if chars.peek().map(|&(_, c)| c) == Some('=') {
                    chars.next();
                    toks.push(Tok::Neq);
                } else {
                    return Err(err(lineno, "expected `!=`"));
                }
            }
            '\'' => {
                chars.next();
                let start = i + 1;
                let mut end = None;
                for (j, c2) in chars.by_ref() {
                    if c2 == '\'' {
                        end = Some(j);
                        break;
                    }
                }
                let end = end.ok_or_else(|| err(lineno, "unterminated string literal"))?;
                toks.push(Tok::Str(line[start..end].to_string()));
            }
            c if c.is_alphanumeric() || c == '_' || c == '-' => {
                let start = i;
                let mut end = i + c.len_utf8();
                chars.next();
                while let Some(&(j, c2)) = chars.peek() {
                    if c2.is_alphanumeric() || c2 == '_' || c2 == '-' {
                        end = j + c2.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                let word = &line[start..end];
                match word.parse::<i64>() {
                    Ok(n) => toks.push(Tok::Int(n)),
                    Err(_) => toks.push(Tok::Ident(word.to_string())),
                }
            }
            other => return Err(err(lineno, format!("unexpected character `{other}`"))),
        }
    }
    Ok(toks)
}

struct Cursor {
    toks: Vec<Tok>,
    pos: usize,
    line: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, RuleError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            // a bare number can be an attribute name in generated schemas
            Some(Tok::Int(n)) => Ok(n.to_string()),
            other => Err(err(self.line, format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<(), RuleError> {
        match self.next() {
            Some(ref got) if *got == t => Ok(()),
            other => Err(err(self.line, format!("expected {what}, found {other:?}"))),
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

fn parse_value(cur: &mut Cursor) -> Result<Value, RuleError> {
    match cur.next() {
        Some(Tok::Str(s)) => Ok(Value::str(s)),
        Some(Tok::Int(n)) => Ok(Value::int(n)),
        Some(Tok::Ident(s)) => Ok(Value::str(s)),
        other => Err(err(cur.line, format!("expected a value, found {other:?}"))),
    }
}

fn parse_line(
    line: &str,
    lineno: usize,
    r: &Arc<Schema>,
    rm: &Arc<Schema>,
) -> Result<Vec<EditingRule>, RuleError> {
    let toks = tokenize(line, lineno)?;
    let mut cur = Cursor {
        toks,
        pos: 0,
        line: lineno,
    };

    let name = cur.expect_ident("a rule name")?;
    cur.expect(Tok::Colon, "`:` after the rule name")?;

    if !cur.keyword("match") {
        return Err(err(lineno, "expected `match` after the rule name"));
    }
    let mut keys: Vec<(String, String)> = Vec::new();
    loop {
        let x = cur.expect_ident("an input attribute")?;
        cur.expect(Tok::Tilde, "`~` between input and master attributes")?;
        let xm = cur.expect_ident("a master attribute")?;
        keys.push((x, xm));
        if !cur.eat(&Tok::Comma) {
            break;
        }
    }

    if !cur.keyword("set") {
        return Err(err(lineno, "expected `set` after the match clause"));
    }
    let mut targets: Vec<(String, String)> = Vec::new();
    loop {
        let b = cur.expect_ident("a target attribute")?;
        cur.expect(Tok::Assign, "`:=` between target and master source")?;
        let bm = cur.expect_ident("a master source attribute")?;
        targets.push((b, bm));
        if !cur.eat(&Tok::Comma) {
            break;
        }
    }

    #[derive(Clone)]
    enum Cond {
        Eq(String, Value),
        Neq(String, Value),
    }
    let mut conds: Vec<Cond> = Vec::new();
    if cur.keyword("when") {
        loop {
            let attr = cur.expect_ident("a pattern attribute")?;
            match cur.next() {
                Some(Tok::Eq) => conds.push(Cond::Eq(attr, parse_value(&mut cur)?)),
                Some(Tok::Neq) => conds.push(Cond::Neq(attr, parse_value(&mut cur)?)),
                other => {
                    return Err(err(
                        lineno,
                        format!("expected `=` or `!=` in a condition, found {other:?}"),
                    ))
                }
            }
            if !cur.eat(&Tok::Comma) {
                break;
            }
        }
    }
    if let Some(tok) = cur.peek() {
        return Err(err(lineno, format!("trailing input: {tok:?}")));
    }

    let many = targets.len() > 1;
    let mut out = Vec::with_capacity(targets.len());
    for (b, bm) in targets {
        let rule_name = if many {
            format!("{name}.{b}")
        } else {
            name.clone()
        };
        let mut builder = EditingRule::build(r, rm).name(rule_name);
        for (x, xm) in &keys {
            builder = builder.key(x, xm);
        }
        builder = builder.fix(&b, &bm);
        for c in &conds {
            builder = match c {
                Cond::Eq(a, v) => builder.when_eq(a, *v),
                Cond::Neq(a, v) => builder.when_neq(a, *v),
            };
        }
        out.push(builder.finish()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use certainfix_relation::PatternValue;

    fn schemas() -> (Arc<Schema>, Arc<Schema>) {
        let r = Schema::new(
            "R",
            [
                "fn", "ln", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap();
        let rm = Schema::new(
            "Rm",
            [
                "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender",
            ],
        )
        .unwrap();
        (r, rm)
    }

    /// The full Σ0 of Example 11 (ϕ1–ϕ9), written in the DSL.
    pub(crate) const SIGMA0: &str = r#"
        # eR1: three rules via zip
        phi1: match zip ~ zip set AC := AC, str := str, city := city
        # eR2: two rules via mobile phone
        phi2: match phn ~ Mphn set fn := FN, ln := LN when type = 2
        # eR3: three rules via home phone, non-toll-free
        phi3: match AC ~ AC, phn ~ Hphn set str := str, city := city, zip := zip when type = 1, AC != '0800'
        # eR4: toll-free numbers fix the city
        phi4: match AC ~ AC set city := city when AC = '0800'
    "#;

    #[test]
    fn parses_sigma0_into_nine_rules() {
        let (r, rm) = schemas();
        let set = parse_rules(SIGMA0, &r, &rm).unwrap();
        assert_eq!(set.len(), 9);
        let phi1_ac = set.by_name("phi1.AC").unwrap();
        assert!(phi1_ac.pattern().is_empty());
        assert_eq!(r.attr_name(phi1_ac.rhs()), "AC");
        let phi3_zip = set.by_name("phi3.zip").unwrap();
        assert_eq!(phi3_zip.lhs().len(), 2);
        assert_eq!(
            phi3_zip.pattern().cell(r.attr("type").unwrap()),
            Some(&PatternValue::Const(Value::int(1)))
        );
        assert_eq!(
            phi3_zip.pattern().cell(r.attr("AC").unwrap()),
            Some(&PatternValue::Neq(Value::str("0800")))
        );
        // single target keeps the plain name
        assert!(set.by_name("phi4").is_some());
    }

    #[test]
    fn cross_attribute_mapping() {
        // DBLP-style φ2: ((a2, a1) → (hp2, hp1), ...)
        let r = Schema::new("R", ["a1", "a2", "hp1", "hp2"]).unwrap();
        let rm = r.clone();
        let set = parse_rules("f2: match a2 ~ a1 set hp2 := hp1", &r, &rm).unwrap();
        let f2 = set.by_name("f2").unwrap();
        assert_eq!(r.attr_name(f2.lhs()[0]), "a2");
        assert_eq!(rm.attr_name(f2.lhs_m()[0]), "a1");
        assert_eq!(r.attr_name(f2.rhs()), "hp2");
        assert_eq!(rm.attr_name(f2.rhs_m()), "hp1");
    }

    #[test]
    fn quoted_strings_preserve_leading_zeros() {
        let (r, rm) = schemas();
        let set = parse_rules(
            "p: match AC ~ AC set city := city when AC = '0800'",
            &r,
            &rm,
        )
        .unwrap();
        let p = set.by_name("p").unwrap();
        assert_eq!(
            p.pattern().cell(r.attr("AC").unwrap()),
            Some(&PatternValue::Const(Value::str("0800")))
        );
    }

    #[test]
    fn bare_words_are_strings_ints_are_ints() {
        let (r, rm) = schemas();
        let set = parse_rules(
            "p: match zip ~ zip set AC := AC when city = Edi, type = 2",
            &r,
            &rm,
        )
        .unwrap();
        let p = set.by_name("p").unwrap();
        assert_eq!(
            p.pattern().cell(r.attr("city").unwrap()),
            Some(&PatternValue::Const(Value::str("Edi")))
        );
        assert_eq!(
            p.pattern().cell(r.attr("type").unwrap()),
            Some(&PatternValue::Const(Value::int(2)))
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let (r, rm) = schemas();
        let set = parse_rules(
            "# nothing here\n\n  \np: match zip ~ zip set AC := AC # trailing\n",
            &r,
            &rm,
        )
        .unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn hash_inside_quote_is_not_comment() {
        let (r, rm) = schemas();
        let set = parse_rules("p: match zip ~ zip set AC := AC when city = '#1'", &r, &rm).unwrap();
        let p = set.by_name("p").unwrap();
        assert_eq!(
            p.pattern().cell(r.attr("city").unwrap()),
            Some(&PatternValue::Const(Value::str("#1")))
        );
    }

    #[test]
    fn error_reporting_carries_line_numbers() {
        let (r, rm) = schemas();
        let e = parse_rules("\n\np match zip ~ zip set AC := AC", &r, &rm).unwrap_err();
        match e {
            RuleError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn syntax_errors() {
        let (r, rm) = schemas();
        for bad in [
            "p: zip ~ zip set AC := AC",                         // missing match
            "p: match zip zip set AC := AC",                     // missing ~
            "p: match zip ~ zip AC := AC",                       // missing set
            "p: match zip ~ zip set AC = AC",                    // = instead of :=
            "p: match zip ~ zip set AC := AC when x",            // dangling condition
            "p: match zip ~ zip set AC := AC junk",              // trailing tokens
            "p: match zip ~ zip set AC := AC when city = 'open", // unterminated
            "p: match zip ~ zip set AC := AC when city ! Edi",   // bad !
            "p: match zip ~ zip set AC := AC when city = %",     // bad char
        ] {
            assert!(
                matches!(parse_rules(bad, &r, &rm), Err(RuleError::Parse { .. })),
                "should fail to parse: {bad}"
            );
        }
    }

    #[test]
    fn unknown_attribute_is_a_rule_error() {
        let (r, rm) = schemas();
        let e = parse_rules("p: match zap ~ zip set AC := AC", &r, &rm).unwrap_err();
        assert!(matches!(e, RuleError::Relation(_)));
    }
}
