//! Errors for rule construction and parsing.

use std::fmt;

use certainfix_relation::RelationError;

/// Errors raised while building, validating or parsing editing rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// `|X| != |Xm|`.
    LhsArityMismatch {
        /// Rule name.
        rule: String,
        /// `|X|`.
        lhs: usize,
        /// `|Xm|`.
        lhs_m: usize,
    },
    /// `X` contains a repeated attribute.
    DuplicateLhsAttr {
        /// Rule name.
        rule: String,
        /// Offending attribute name.
        attr: String,
    },
    /// `B ∈ X` — the paper requires `B ∈ R \ X`.
    RhsInLhs {
        /// Rule name.
        rule: String,
        /// The offending attribute name.
        attr: String,
    },
    /// A rule with no lhs attribute and no pattern would fire on every
    /// tuple with no master key to probe; the semantics requires a key.
    EmptyLhs {
        /// Rule name.
        rule: String,
    },
    /// An attribute resolution failure from the relation layer.
    Relation(RelationError),
    /// A rule referenced a schema other than the rule set's `(R, Rm)`.
    SchemaMismatch {
        /// Rule name.
        rule: String,
        /// Explanation of the mismatch.
        detail: String,
    },
    /// DSL syntax error.
    Parse {
        /// 1-based line number in the DSL source.
        line: usize,
        /// Explanation.
        msg: String,
    },
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::LhsArityMismatch { rule, lhs, lhs_m } => write!(
                f,
                "rule `{rule}`: lhs lists must have equal length (|X| = {lhs}, |Xm| = {lhs_m})"
            ),
            RuleError::DuplicateLhsAttr { rule, attr } => {
                write!(f, "rule `{rule}`: lhs attribute `{attr}` repeats")
            }
            RuleError::RhsInLhs { rule, attr } => write!(
                f,
                "rule `{rule}`: fixed attribute `{attr}` must not occur in the lhs (B ∈ R \\ X)"
            ),
            RuleError::EmptyLhs { rule } => {
                write!(
                    f,
                    "rule `{rule}`: the lhs attribute list X must be non-empty"
                )
            }
            RuleError::Relation(e) => write!(f, "{e}"),
            RuleError::SchemaMismatch { rule, detail } => {
                write!(f, "rule `{rule}`: schema mismatch: {detail}")
            }
            RuleError::Parse { line, msg } => write!(f, "rule DSL, line {line}: {msg}"),
        }
    }
}

impl std::error::Error for RuleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuleError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for RuleError {
    fn from(e: RelationError) -> Self {
        RuleError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = RuleError::LhsArityMismatch {
            rule: "phi".into(),
            lhs: 2,
            lhs_m: 1,
        };
        assert!(e.to_string().contains("|X| = 2"));
        let e = RuleError::RhsInLhs {
            rule: "phi".into(),
            attr: "zip".into(),
        };
        assert!(e.to_string().contains("B ∈ R \\ X"));
        let e = RuleError::Parse {
            line: 3,
            msg: "expected `set`".into(),
        };
        assert_eq!(e.to_string(), "rule DSL, line 3: expected `set`");
        let e = RuleError::EmptyLhs { rule: "p".into() };
        assert!(e.to_string().contains("non-empty"));
    }

    #[test]
    fn wraps_relation_errors() {
        let inner = RelationError::UnknownAttr {
            schema: "R".into(),
            attr: "zap".into(),
        };
        let e: RuleError = inner.clone().into();
        assert_eq!(e.to_string(), inner.to_string());
        assert!(std::error::Error::source(&e).is_some());
    }
}
