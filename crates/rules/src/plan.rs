//! Compiled rule plans: the allocation-free probe layer.
//!
//! The paper's complexity argument for `TransFix` assumes each "is a
//! master tuple applicable?" check is one hash probe. The convenience
//! path (`candidate_masters` → `MasterIndex::matches_projection` →
//! `index_for`) pays far more than that per probe: an `RwLock` read,
//! a hash of the `Vec<AttrId>` key list, a freshly allocated projection
//! `Vec<Value>`, and a cloned `Vec<u32>` hit list — per rule, per
//! round, per tuple. Following the compile-once-probe-many discipline
//! of compiled/factorised query engines, a [`RulePlan`] is built **once**
//! per `(RuleSet, MasterIndex)` pair and precomputes, per rule:
//!
//! * the pinned [`Arc<KeyIndex>`] for the full key list `Xm` (no lock,
//!   no key hashing on the steady-state path),
//! * the projection layout `X` and the pattern pre-check `tp[Xp]`,
//! * the `λϕ` alignment of each pattern attribute with its master
//!   column (`pattern_master`), used by the suggestion derivation,
//! * the rule's premise set and rhs/master fix column,
//! * a lock-free table of *sub-key* indexes — one slot per subset of
//!   `X` — so the `t[X ∩ Z] = tm[λϕ(X ∩ Z)]` probes of
//!   `applicable_rules` (Sect. 5.2) resolve their validated-key split
//!   without rebuilding `from`/`to` vectors or re-hashing key lists.
//!
//! Per-probe state lives in a caller-owned [`ProbeScratch`]; once its
//! buffer has warmed, a probe performs **zero heap allocations** and
//! returns the hit list by borrow from the pinned index. The scratch
//! also counts probes, buffer (re)allocations, and wide-key fallbacks,
//! surfaced by the core crate as
//! `MonitorStats::{plan_probes, probe_allocs, plan_fallbacks}`.
//!
//! # Block probing
//!
//! On top of the single-tuple probes sits a *vectorized* layer that
//! probes one rule against a **block** of tuples at a time
//! ([`RulePlan::plan_probe_block`], bulk-prefetched by
//! [`RulePlan::probe_block_seeds`]). At compile time, rules with an
//! identical `(X, Xm)` key are merged into one *probe group*
//! ([`RulePlan::probe_groups`]) — a rule like ϕ1 of the paper, whose
//! three set-clauses compile to three rules keyed on the same `zip`,
//! pays for one key probe per tuple instead of three. Per block and
//! group, identical keys are hashed **once** and share one hit list,
//! by one of two disciplines picked at compile time by key width:
//!
//! * **flat groups** (one- or two-attribute keys, the common case)
//!   deduplicate in a single pass through a generation-stamped
//!   open-addressing table keyed on the injective
//!   [`Value::grouping_rank`] — the first cell with a given key probes
//!   the pinned flat index, every later cell pays one mix, one slot
//!   load, and a rank compare. Below depth 3 a trie descent costs as
//!   many node hops as the key has attributes while one flat-map hash
//!   resolves the whole key, so no trie is built;
//! * **wide groups** (three attributes and up) gather their keys into
//!   struct-of-arrays scratch columns ([`Value`]s are 16-byte `Copy`
//!   words, so the gather is memcpy-shaped), **sort-group** them so
//!   identical keys are adjacent, and resolve by descending the
//!   group's factorised [`KeyTrie`] — consecutive sorted keys
//!   re-descend only the suffix that differs, so overlapping prefixes
//!   reuse partial lookups.
//!
//! Pattern pre-checks are hoisted into a per-block bitmask. Short hit
//! lists land once per distinct key in a scratch-owned arena; fat
//! ones (over `MAX_PREFETCH_HITS` rows) are shared with the pinned
//! index by refcount instead of copied. Per-(rule × tuple) spans
//! point at either.
//!
//! # Determinism contract
//!
//! For any rule, tuple, and master data, the plan-backed probes return
//! exactly the row ids, in exactly the order, of the legacy
//! [`candidate_masters`](crate::apply::candidate_masters) path — both
//! read the same [`KeyIndex`] maps, and the block layer's trie is built
//! from the same rows in the same order. The plain functions remain in
//! the tree as the *test/property parity oracle* for this contract
//! (invariant D4) — engines always run the plan. **Block-probed
//! results are bit-identical to single-tuple probing at every block
//! size**: a block cell holds exactly the hit list the single-tuple
//! probe would return for that `(rule, tuple)` pair, and consuming it
//! counts one *logical* probe, so `plan_probes` is independent of how
//! the input was blocked.
//!
//! # Slot invalidation (live master data)
//!
//! A `RulePlan` is an **immutable per-generation artifact**: every
//! pinned `Arc<KeyIndex>`, every lazily filled 2^|X| sub-key slot, and
//! the probe groups' tries all describe the one master generation the
//! plan was compiled against ([`RulePlan::generation`]). A
//! `MasterDelta` therefore never mutates a plan — invalidation is
//! *recompilation*: the engine compiles a fresh plan against the
//! next-generation [`MasterIndex`] and swaps it in at the next epoch
//! boundary, while in-flight probes keep the old plan's `Arc`s and
//! finish against the generation they started on (nothing blocks,
//! nothing is torn). Recompilation is cheap on the hot path:
//! [`MasterIndex::index_for`] is generation-checked, so a delete-free
//! delta hands the new plan *patched* indexes instead of rebuilds, and
//! cold sub-key slots refill lazily exactly as they did on first
//! compile. The session layer counts swaps as `plan_rebuilds`.

use std::sync::{Arc, OnceLock};

use certainfix_relation::{
    AttrId, AttrSet, KeyIndex, KeyTrie, MasterIndex, PatternTuple, Tuple, Value,
};

use crate::ruleset::RuleSet;

/// Caller-owned reusable probe state: the projection buffer, the
/// block-probe buffers, and the probe / allocation / fallback
/// counters.
///
/// One scratch per worker (or per sequential engine) suffices; every
/// buffer warms to the widest shape it ever serves and is then reused
/// allocation-free. The counters are cumulative until
/// [`take_counters`](Self::take_counters) drains them.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    probe: Vec<Value>,
    block: BlockBuffers,
    probes: u64,
    allocs: u64,
    fallbacks: u64,
}

/// Struct-of-arrays block-probe state (see the
/// [module docs](self#block-probing)): per-session results — the
/// pattern bitmask, the hit arena, and the per-(group × tuple) spans
/// into it — plus the per-group gather/sort scratch columns. All
/// buffers are reused across blocks.
#[derive(Debug, Default)]
struct BlockBuffers {
    /// Block length of the current session.
    len: usize,
    /// `u64` lanes per bitmask row (`len.div_ceil(64)`).
    lanes: usize,
    /// Pattern pre-check bitmask, rule-major: bit `j % 64` of
    /// `pattern[i * lanes + j / 64]` is set iff rule `i`'s pattern
    /// matches block tuple `j`. Valid only where `pattern_done[i]`.
    pattern: Vec<u64>,
    /// `pattern[i]` lanes filled this session.
    pattern_done: Vec<bool>,
    /// Hit spans, group-major: `spans[g * len + j]` is
    /// `(start, len)` into `arena`, `(`[`FAT_SPAN`]`, f)` for the
    /// shared list `fat[f]`, or [`NO_SPAN`] when cell `(g, j)` was not
    /// prefetched this session.
    spans: Vec<(u32, u32)>,
    /// Group `g` probed this session.
    group_done: Vec<bool>,
    /// The shared hit-list arena the spans point into; one copy per
    /// distinct key per group.
    arena: Vec<u32>,
    /// Fat hit lists (`> MAX_PREFETCH_HITS` rows), shared with the
    /// pinned index by refcount instead of copied into the arena — one
    /// `Arc` clone per distinct fat key per session.
    fat: Vec<Arc<[u32]>>,
    /// Trie-group gather scratch: probed tuples' keys, row-major with
    /// the group's key length as stride.
    keys: Vec<Value>,
    /// Trie-group gather scratch: `keys` mapped through the cheap
    /// injective grouping rank, same layout (computed once, compared
    /// many times by the sort).
    ranks: Vec<u128>,
    /// Trie-group gather scratch: block positions of the probed
    /// tuples.
    idx: Vec<u32>,
    /// Trie-group gather scratch: positions into `idx`/`keys`, sorted
    /// by key.
    order: Vec<u32>,
    /// Flat-group dedup table for single-attribute keys:
    /// open-addressed `(rank, gen, span)` entries. An entry whose
    /// `gen` stamp is stale is empty — bumping [`Self::gen`] resets
    /// the whole table in O(1), no per-group clear.
    table1: Vec<(u128, u64, (u32, u32))>,
    /// Flat-group dedup table for two-attribute keys:
    /// `(rank0, rank1, gen, span)`.
    table2: Vec<(u128, u128, u64, (u32, u32))>,
    /// Generation stamp of the current `probe_group` call; strictly
    /// increasing across groups and sessions (a `u64` cannot wrap).
    gen: u64,
    /// Seed-prefetch scratch: group-major `needed` bitmask (same lane
    /// layout as `pattern`).
    needed: Vec<u64>,
}

/// Sentinel span for a block cell that was not prefetched.
const NO_SPAN: (u32, u32) = (u32::MAX, 0);

/// Span tag for a fat hit list: `(FAT_SPAN, f)` reads
/// `BlockBuffers::fat[f]` instead of an arena slice. The arena can
/// never legitimately start here — it would need `u32::MAX - 1` rows.
const FAT_SPAN: u32 = u32::MAX - 1;

impl ProbeScratch {
    /// A fresh scratch (no buffer allocated yet).
    pub fn new() -> ProbeScratch {
        ProbeScratch::default()
    }

    /// Logical probes performed since the last
    /// [`take_counters`](Self::take_counters). Block probing counts a
    /// probe when a prefetched cell is *consumed*, not when it is
    /// filled, so this is independent of block size.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Buffer (re)allocations since the last drain. After warmup
    /// this stays at zero — the steady-state lookup and block paths
    /// are allocation-free.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Wide-key sub-slot fallbacks since the last drain: probes by
    /// [`RulePlan::validated_candidates`] on rules with
    /// `|X| > MAX_SUB_KEY_BITS`, which bypass the lock-free slot table
    /// and copy their hit list out of the shared master cache.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Drain `(probes, allocs, fallbacks)`, resetting all counters
    /// (the buffers keep their capacity).
    pub fn take_counters(&mut self) -> (u64, u64, u64) {
        (
            std::mem::take(&mut self.probes),
            std::mem::take(&mut self.allocs),
            std::mem::take(&mut self.fallbacks),
        )
    }

    /// Probe `idx` with `t[from]` through the buffer
    /// ([`KeyIndex::lookup_projection`]), counting one probe and any
    /// capacity growth.
    fn lookup<'p>(&mut self, idx: &'p KeyIndex, t: &Tuple, from: &[AttrId]) -> &'p [u32] {
        let cap = self.probe.capacity();
        let hits = idx.lookup_projection(t, from, &mut self.probe);
        if self.probe.capacity() != cap {
            self.allocs += 1;
        }
        self.probes += 1;
        hits
    }

    /// Probe `idx` with the masked subset of `t[attrs]` (ascending
    /// positions).
    fn lookup_masked<'p>(
        &mut self,
        idx: &'p KeyIndex,
        t: &Tuple,
        attrs: &[AttrId],
        mask: u64,
    ) -> &'p [u32] {
        let cap = self.probe.capacity();
        self.probe.clear();
        for (i, &a) in attrs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                self.probe.push(*t.get(a));
            }
        }
        if self.probe.capacity() != cap {
            self.allocs += 1;
        }
        self.probes += 1;
        idx.lookup(&self.probe)
    }
}

/// Widest key list for which per-subset index slots are preallocated
/// (`2^MAX_SUB_KEY_BITS` slots per rule). Wider rules fall back to the
/// shared [`MasterIndex`] cache for their sub-key probes.
const MAX_SUB_KEY_BITS: usize = 6;

/// One rule, compiled against a master index.
#[derive(Debug)]
pub struct CompiledRule {
    lhs: Box<[AttrId]>,
    lhs_m: Box<[AttrId]>,
    lhs_set: AttrSet,
    rhs: AttrId,
    rhs_m: AttrId,
    premise: AttrSet,
    pattern: PatternTuple,
    /// `λϕ` for each pattern attribute: the master column aligned with
    /// it when the pattern attribute is also a key, `None` otherwise.
    pattern_master: Box<[Option<AttrId>]>,
    /// `true` iff some pattern attribute is a key (precomputed for the
    /// no-validated-key branch of `applicable_rules`).
    pattern_on_keys: bool,
    /// The pinned full-key index (`Xm`).
    index: Arc<KeyIndex>,
    /// Lock-free per-subset index slots (`1 << |X|` entries when
    /// `|X| ≤ MAX_SUB_KEY_BITS`, empty otherwise). Slot `m` indexes the
    /// master columns `{Xm[i] : bit i of m}`; built on first use,
    /// read with one atomic load thereafter.
    sub: Box<[OnceLock<Arc<KeyIndex>>]>,
}

impl CompiledRule {
    /// `lhs(ϕ) = X`.
    pub fn lhs(&self) -> &[AttrId] {
        &self.lhs
    }

    /// `lhsm(ϕ) = Xm`.
    pub fn lhs_m(&self) -> &[AttrId] {
        &self.lhs_m
    }

    /// `X` as a set.
    pub fn lhs_set(&self) -> AttrSet {
        self.lhs_set
    }

    /// `rhs(ϕ) = B`.
    pub fn rhs(&self) -> AttrId {
        self.rhs
    }

    /// `rhsm(ϕ) = Bm`.
    pub fn rhs_m(&self) -> AttrId {
        self.rhs_m
    }

    /// `X ∪ Xp` — what must be validated before the rule may fire.
    pub fn premise(&self) -> AttrSet {
        self.premise
    }

    /// The (normalized) pattern `tp[Xp]`.
    pub fn pattern(&self) -> &PatternTuple {
        &self.pattern
    }

    /// `lhsp(ϕ) = Xp`.
    pub fn lhs_p(&self) -> &[AttrId] {
        self.pattern.attrs()
    }

    /// Per pattern cell, the master column `λϕ` aligns it with (when
    /// the pattern attribute is also a key). Parallel to
    /// [`lhs_p`](Self::lhs_p).
    pub fn pattern_master(&self) -> &[Option<AttrId>] {
        &self.pattern_master
    }

    /// `true` iff some pattern attribute is also a key attribute.
    pub fn pattern_on_keys(&self) -> bool {
        self.pattern_on_keys
    }

    /// The pinned full-key index.
    pub fn index(&self) -> &Arc<KeyIndex> {
        &self.index
    }

    /// Bitmask (over lhs positions, ascending) of key attributes in
    /// `validated`.
    pub fn validated_mask(&self, validated: AttrSet) -> u64 {
        let mut mask = 0u64;
        for (i, &a) in self.lhs.iter().enumerate() {
            if validated.contains(a) {
                mask |= 1 << i;
            }
        }
        mask
    }
}

/// Hit list returned by [`RulePlan::validated_candidates`]: borrowed
/// from a pinned index on the steady-state path, owned only on the
/// cold fallback for rules with more key attributes than the slot
/// table covers.
#[derive(Debug)]
pub enum PlanHits<'p> {
    /// Borrowed from a pinned [`KeyIndex`].
    Borrowed(&'p [u32]),
    /// Copied out of the shared master cache (wide-key fallback).
    Owned(Vec<u32>),
}

impl std::ops::Deref for PlanHits<'_> {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        match self {
            PlanHits::Borrowed(s) => s,
            PlanHits::Owned(v) => v,
        }
    }
}

/// Rules sharing one probe key, merged at compile time: all compiled
/// rules with identical `(X, Xm)` lists. Block probing pays one key
/// lookup per (distinct key value × group) instead of per
/// (tuple × rule); the factorised [`KeyTrie`] additionally shares
/// partial lookups between sorted keys with a common prefix.
#[derive(Debug)]
struct ProbeGroup {
    lhs: Box<[AttrId]>,
    lhs_m: Box<[AttrId]>,
    /// The group's factorised hit lists: node at depth `d` holds the
    /// rows matching the first `d` key columns. `None` for one- and
    /// two-attribute keys: below depth 3 a descent costs as many node
    /// hops as the key has attributes while one flat-map hash resolves
    /// the whole key, so those groups probe the member rules' pinned
    /// flat [`KeyIndex`] directly. From depth 3 up, sorted-neighbor
    /// keys share long prefixes and the factorised descent pays.
    trie: Option<KeyTrie>,
    /// Member rule indexes, ascending.
    members: Vec<u32>,
    /// Whether block sessions prefetch this group. Flat-probed groups
    /// (depth ≤ 2) always do — short hit lists are copied into the
    /// contiguous arena, fat ones (`> MAX_PREFETCH_HITS` rows) shared
    /// with the pinned index by refcount, so no fan-out makes the
    /// block path pay more than the single-tuple borrow. Trie-probed
    /// groups have no refcounted list to share, so a fat-listed wide
    /// group opts out and block readers fall back to the single-tuple
    /// probe (a compile-time property of `(rules, master)`, hence
    /// identical at every block size and worker count).
    prefetch: bool,
}

/// Hit lists longer than this are shared by refcount rather than
/// copied into the block arena (see [`ProbeGroup::prefetch`]).
const MAX_PREFETCH_HITS: usize = 32;

/// A rule set compiled against one master index; see the
/// [module docs](self).
///
/// Also known as the *compiled rule set*: build once per
/// `(RuleSet, MasterIndex)`, share by reference across workers (the
/// plan is `Sync` — its mutable parts are `OnceLock` slots).
#[derive(Debug)]
pub struct RulePlan {
    master: MasterIndex,
    rules: Box<[CompiledRule]>,
    groups: Box<[ProbeGroup]>,
    /// Rule index → probe-group index.
    group_of: Box<[u32]>,
}

/// Alias matching the paper-facing name used in docs and the ROADMAP.
pub type CompiledRuleSet = RulePlan;

impl RulePlan {
    /// Compile `rules` against `master`: pin one full-key index per
    /// rule (building it if cold — builds are single-flight in the
    /// [`MasterIndex`]) and precompute the per-rule probe layout.
    pub fn compile(rules: &RuleSet, master: &MasterIndex) -> RulePlan {
        let compiled: Box<[CompiledRule]> = rules
            .iter()
            .map(|(_, rule)| {
                let pattern_master: Box<[Option<AttrId>]> = rule
                    .lhs_p()
                    .iter()
                    .map(|&a| rule.master_attr_for(a))
                    .collect();
                let pattern_on_keys = pattern_master.iter().any(Option::is_some);
                let sub_len = if rule.lhs().len() <= MAX_SUB_KEY_BITS {
                    1usize << rule.lhs().len()
                } else {
                    0
                };
                let mut sub = Vec::with_capacity(sub_len);
                sub.resize_with(sub_len, OnceLock::new);
                CompiledRule {
                    lhs: rule.lhs().into(),
                    lhs_m: rule.lhs_m().into(),
                    lhs_set: rule.lhs_set(),
                    rhs: rule.rhs(),
                    rhs_m: rule.rhs_m(),
                    premise: rule.premise(),
                    pattern: rule.pattern().clone(),
                    pattern_master,
                    pattern_on_keys,
                    index: master.index_for(rule.lhs_m()),
                    sub: sub.into_boxed_slice(),
                }
            })
            .collect();
        // merge rules with an identical (X, Xm) into probe groups and
        // build each group's factorised trie (same rows, same order,
        // same null handling as the pinned flat index)
        let mut groups: Vec<ProbeGroup> = Vec::new();
        let mut group_of = Vec::with_capacity(compiled.len());
        for (i, cr) in compiled.iter().enumerate() {
            let g = groups
                .iter()
                .position(|g| g.lhs == cr.lhs && g.lhs_m == cr.lhs_m)
                .unwrap_or_else(|| {
                    groups.push(ProbeGroup {
                        lhs: cr.lhs.clone(),
                        lhs_m: cr.lhs_m.clone(),
                        trie: (cr.lhs_m.len() >= 3)
                            .then(|| KeyTrie::build(master.relation(), &cr.lhs_m)),
                        members: Vec::new(),
                        prefetch: cr.lhs_m.len() <= 2
                            || cr.index.max_hit_len() <= MAX_PREFETCH_HITS,
                    });
                    groups.len() - 1
                });
            groups[g].members.push(i as u32);
            group_of.push(g as u32);
        }
        RulePlan {
            master: master.clone(),
            rules: compiled,
            groups: groups.into_boxed_slice(),
            group_of: group_of.into_boxed_slice(),
        }
    }

    /// The master index the plan was compiled against.
    pub fn master(&self) -> &MasterIndex {
        &self.master
    }

    /// The master *generation* the plan was compiled against (see the
    /// [module docs](self#slot-invalidation-live-master-data)): all
    /// pinned and sub-key slot indexes resolve against exactly this
    /// snapshot, so a plan never observes a delta — engines swap in a
    /// freshly compiled plan instead.
    pub fn generation(&self) -> u64 {
        self.master.generation()
    }

    /// Number of compiled rules (equals the source rule set's).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` iff the plan compiles no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The compiled form of rule `i`.
    pub fn rule(&self, i: usize) -> &CompiledRule {
        &self.rules[i]
    }

    /// Iterate `(index, compiled rule)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &CompiledRule)> {
        self.rules.iter().enumerate()
    }

    /// The candidate masters of rule `i` on `t` — all `tm` with
    /// `tm[Xm] = t[X]`, empty when the pattern does not match or `t[X]`
    /// contains a null. Identical ids, in identical order, to
    /// [`candidate_masters`](crate::apply::candidate_masters); borrows
    /// the hit list from the pinned index and allocates nothing once
    /// the scratch is warm.
    pub fn candidates<'p>(&'p self, i: usize, t: &Tuple, scratch: &mut ProbeScratch) -> &'p [u32] {
        let rule = &self.rules[i];
        if !rule.pattern.matches(t) {
            return &[];
        }
        self.probe(i, t, scratch)
    }

    /// The raw key probe of rule `i` (no pattern pre-check): all `tm`
    /// with `tm[Xm] = t[X]`.
    pub fn probe<'p>(&'p self, i: usize, t: &Tuple, scratch: &mut ProbeScratch) -> &'p [u32] {
        let rule = &self.rules[i];
        scratch.lookup(&rule.index, t, &rule.lhs)
    }

    /// Look rule `i`'s pinned full-key index up with caller-supplied
    /// probe values (in `Xm` order). Used by offline analyses that
    /// probe with pattern constants rather than a tuple projection.
    pub fn lookup<'p>(&'p self, i: usize, probe: &[Value]) -> &'p [u32] {
        self.rules[i].index.lookup(probe)
    }

    /// Number of probe groups — rules sharing an identical `(X, Xm)`
    /// key are merged and pay one key probe per tuple between them
    /// (see the [module docs](self#block-probing)).
    pub fn probe_groups(&self) -> usize {
        self.groups.len()
    }

    /// The probe group rule `i` belongs to.
    #[inline]
    pub fn group_of(&self, i: usize) -> usize {
        self.group_of[i] as usize
    }

    /// Begin a block-probe session over `n` tuples: size and clear the
    /// scratch's block state. Until the next `begin_block` (or
    /// [`probe_block_seeds`](Self::probe_block_seeds), which begins its
    /// own session), results filled by
    /// [`plan_probe_block`](Self::plan_probe_block) are readable
    /// through [`block_pattern_ok`](Self::block_pattern_ok),
    /// [`block_prefetched`](Self::block_prefetched),
    /// [`block_probe`](Self::block_probe) and
    /// [`block_candidates`](Self::block_candidates).
    pub fn begin_block(&self, n: usize, scratch: &mut ProbeScratch) {
        let lanes = n.div_ceil(64);
        let b = &mut scratch.block;
        let mut grew = 0u64;
        let cap = b.pattern.capacity();
        b.pattern.clear();
        b.pattern.resize(self.rules.len() * lanes, 0);
        grew += (b.pattern.capacity() != cap) as u64;
        let cap = b.pattern_done.capacity();
        b.pattern_done.clear();
        b.pattern_done.resize(self.rules.len(), false);
        grew += (b.pattern_done.capacity() != cap) as u64;
        let cap = b.spans.capacity();
        b.spans.clear();
        b.spans.resize(self.groups.len() * n, NO_SPAN);
        grew += (b.spans.capacity() != cap) as u64;
        let cap = b.group_done.capacity();
        b.group_done.clear();
        b.group_done.resize(self.groups.len(), false);
        grew += (b.group_done.capacity() != cap) as u64;
        let cap = b.needed.capacity();
        b.needed.clear();
        b.needed.resize(self.groups.len() * lanes, 0);
        grew += (b.needed.capacity() != cap) as u64;
        b.arena.clear();
        b.fat.clear();
        // size the flat-group dedup tables to a ≤ ½ load factor for
        // the worst case (every probed cell a distinct key); entries
        // carry a stale `gen` stamp, so growth needs no re-clearing
        let tcap = (2 * n.max(1)).next_power_of_two().max(64);
        if b.table1.len() < tcap {
            b.table1.resize(tcap, (0, 0, (0, 0)));
            grew += 1;
        }
        if b.table2.len() < tcap {
            b.table2.resize(tcap, (0, 0, 0, (0, 0)));
            grew += 1;
        }
        b.len = n;
        b.lanes = lanes;
        scratch.allocs += grew;
    }

    /// Hoist rule `i`'s pattern pre-check into its per-block bitmask
    /// lane (once per session; empty patterns set every bit without
    /// touching the tuples).
    fn fill_pattern_lane(&self, i: usize, block: &[&Tuple], scratch: &mut ProbeScratch) {
        let b = &mut scratch.block;
        if b.pattern_done[i] {
            return;
        }
        b.pattern_done[i] = true;
        let rule = &self.rules[i];
        let base = i * b.lanes;
        if rule.pattern.attrs().is_empty() {
            for lane in &mut b.pattern[base..base + b.lanes] {
                *lane = !0;
            }
        } else {
            for (j, t) in block.iter().enumerate() {
                if rule.pattern.matches(t) {
                    b.pattern[base + j / 64] |= 1 << (j % 64);
                }
            }
        }
    }

    /// Probe group `g`'s marked cells against the block so identical
    /// keys resolve once per block: flat-probed groups (depth ≤ 2)
    /// deduplicate through a generation-stamped open-addressing table
    /// in one pass; wide groups sort-group their keys and descend the
    /// factorised trie sharing the longest common prefix with the
    /// previous sorted key. Hit lists land once per distinct key in
    /// the arena (fat ones shared by refcount); every probed cell gets
    /// a span.
    fn probe_group(&self, g: usize, block: &[&Tuple], scratch: &mut ProbeScratch) {
        let grp = &self.groups[g];
        let b = &mut scratch.block;
        if b.group_done[g] {
            return;
        }
        b.group_done[g] = true;
        if !grp.prefetch {
            // a fat-listed trie group: its hit lists live in trie
            // nodes with no refcount to share, so spans remain
            // `NO_SPAN` and block readers fall back to single-tuple
            // probes instead of copying the lists into the arena
            return;
        }
        let n = b.len;
        let k = grp.lhs.len();
        let lanes = b.lanes;
        b.gen += 1;
        let gen = b.gen;
        let BlockBuffers {
            ref needed,
            ref mut keys,
            ref mut ranks,
            ref mut idx,
            ref mut order,
            ref mut table1,
            ref mut table2,
            ref mut arena,
            ref mut fat,
            ref mut spans,
            ..
        } = *b;
        let caps = (
            keys.capacity(),
            ranks.capacity(),
            idx.capacity(),
            order.capacity(),
            arena.capacity(),
            fat.capacity(),
        );
        keys.clear();
        ranks.clear();
        idx.clear();
        order.clear();
        // Everything below groups by `Value::grouping_rank`, not
        // semantic order: `Value`'s `Ord` resolves interned strings
        // and compares text, far too slow for hot equality grouping.
        // The rank is injective, so rank equality IS key equality —
        // the dedup tables compare ranks only, and the trie sort needs
        // adjacency, not semantic order.
        //
        // Fibonacci-mix a rank into a table slot: ranks are tag bits
        // over dense interner ids, so a multiply spreads them; the
        // high bits carry the entropy
        #[inline]
        fn slot(r: u128, mask: usize) -> usize {
            let h = ((r as u64) ^ ((r >> 64) as u64)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (h >> 32) as usize & mask
        }
        // resolve one distinct key's hit list into a span: short lists
        // are copied into the contiguous arena, fat ones share the
        // pinned index's refcounted list — an `Arc` bump per distinct
        // key instead of a row copy per fan-out. The threshold depends
        // only on `(master, key)`, so the choice is identical at every
        // block size and worker count.
        fn resolve(
            hits: Option<&Arc<[u32]>>,
            arena: &mut Vec<u32>,
            fat: &mut Vec<Arc<[u32]>>,
        ) -> (u32, u32) {
            match hits {
                None => (0, 0),
                Some(h) if h.len() > MAX_PREFETCH_HITS => {
                    fat.push(h.clone());
                    (FAT_SPAN, (fat.len() - 1) as u32)
                }
                Some(h) => {
                    let start = arena.len() as u32;
                    arena.extend_from_slice(h);
                    (start, h.len() as u32)
                }
            }
        }
        let nbase = g * lanes;
        let mut span = NO_SPAN;
        let sbase = g * n;
        if k == 1 {
            // single-attribute key (the common case): a depth-1 trie
            // has no prefixes to share and a sort costs more than the
            // hash it would amortize, so deduplicate in ONE pass
            // through the open-addressing table — the first cell with
            // a given rank probes the member rules' pinned flat index
            // and resolves a span, every later cell pays a mix, one
            // table slot load and a rank compare. The table is
            // generation-stamped, so "clearing" it for this group was
            // the `gen` bump above.
            let a = grp.lhs[0];
            let flat = &self.rules[grp.members[0] as usize].index;
            let mask = table1.len() - 1;
            for l in 0..lanes {
                let lane = needed[nbase + l];
                if lane == 0 {
                    continue;
                }
                let jb = l * 64;
                // full lanes skip the per-cell bit test entirely
                let dense = lane == !0 && jb + 64 <= n;
                for j in jb..(jb + 64).min(n) {
                    if !dense && lane & (1 << (j - jb)) == 0 {
                        continue;
                    }
                    let r = block[j].get(a).grouping_rank();
                    let mut h = slot(r, mask);
                    let span = loop {
                        let e = &mut table1[h];
                        if e.1 != gen {
                            let s = resolve(flat.lookup_rank_shared(r), arena, fat);
                            *e = (r, gen, s);
                            break s;
                        }
                        if e.0 == r {
                            break e.2;
                        }
                        h = (h + 1) & mask;
                    };
                    spans[sbase + j] = span;
                }
            }
        } else if k == 2 {
            // two-attribute key: one flat-map hash of the pair still
            // beats two trie node hops, so probe the pinned full-key
            // index, deduplicating through the pair table in the same
            // single pass as above
            let (a0, a1) = (grp.lhs[0], grp.lhs[1]);
            let flat = &self.rules[grp.members[0] as usize].index;
            let mask = table2.len() - 1;
            for l in 0..lanes {
                let lane = needed[nbase + l];
                if lane == 0 {
                    continue;
                }
                let jb = l * 64;
                let dense = lane == !0 && jb + 64 <= n;
                for j in jb..(jb + 64).min(n) {
                    if !dense && lane & (1 << (j - jb)) == 0 {
                        continue;
                    }
                    let t = block[j];
                    let (v0, v1) = (*t.get(a0), *t.get(a1));
                    let (r0, r1) = (v0.grouping_rank(), v1.grouping_rank());
                    let mut h = slot(r0 ^ r1.rotate_left(64), mask);
                    let span = loop {
                        let e = &mut table2[h];
                        if e.2 != gen {
                            let s = resolve(flat.lookup_shared(&[v0, v1]), arena, fat);
                            *e = (r0, r1, gen, s);
                            break s;
                        }
                        if (e.0, e.1) == (r0, r1) {
                            break e.3;
                        }
                        h = (h + 1) & mask;
                    };
                    spans[sbase + j] = span;
                }
            }
        } else {
            for (j, t) in block.iter().enumerate() {
                if needed[nbase + j / 64] & (1 << (j % 64)) != 0 {
                    idx.push(j as u32);
                    for &a in grp.lhs.iter() {
                        let v = *t.get(a);
                        keys.push(v);
                        ranks.push(v.grouping_rank());
                    }
                }
            }
            let mut cur = grp
                .trie
                .as_ref()
                .expect("wide groups carry a trie")
                .cursor();
            order.extend(0..idx.len() as u32);
            order.sort_unstable_by(|&a, &b| {
                let (a, b) = (a as usize * k, b as usize * k);
                ranks[a..a + k].cmp(&ranks[b..b + k])
            });
            let mut prev: Option<usize> = None;
            for &p in order.iter() {
                let pk = p as usize * k;
                let lcp = match prev {
                    None => 0,
                    Some(qk) => ranks[pk..pk + k]
                        .iter()
                        .zip(&ranks[qk..qk + k])
                        .take_while(|(a, b)| a == b)
                        .count(),
                };
                if lcp < k || prev.is_none() {
                    // a new distinct key: re-descend only the suffix
                    // that differs from the previous one
                    cur.truncate(lcp);
                    for &v in &keys[pk + lcp..pk + k] {
                        cur.descend(v);
                    }
                    let hits = cur.hits();
                    let start = arena.len() as u32;
                    arena.extend_from_slice(hits);
                    span = (start, hits.len() as u32);
                }
                spans[sbase + idx[p as usize] as usize] = span;
                prev = Some(pk);
            }
        }
        scratch.allocs += (keys.capacity() != caps.0) as u64
            + (ranks.capacity() != caps.1) as u64
            + (idx.capacity() != caps.2) as u64
            + (order.capacity() != caps.3) as u64
            + (arena.capacity() != caps.4) as u64
            + (fat.capacity() != caps.5) as u64;
    }

    /// Probe rule `i` against a whole block of tuples at once — the
    /// vectorized analogue of calling [`probe`](Self::probe) per tuple.
    /// Requires an active [`begin_block`](Self::begin_block) session of
    /// the same length. The rule's pattern lane is hoisted, and its
    /// probe group resolved for **every** block cell (the first member
    /// rule pays; siblings and equal keys ride along). Results are read
    /// back per cell with
    /// [`block_candidates`](Self::block_candidates) /
    /// [`block_probe`](Self::block_probe).
    pub fn plan_probe_block(&self, i: usize, block: &[&Tuple], scratch: &mut ProbeScratch) {
        debug_assert_eq!(
            block.len(),
            scratch.block.len,
            "begin_block sizes the session"
        );
        self.fill_pattern_lane(i, block, scratch);
        let g = self.group_of[i] as usize;
        if !scratch.block.group_done[g] {
            let b = &mut scratch.block;
            let nbase = g * b.lanes;
            for lane in &mut b.needed[nbase..nbase + b.lanes] {
                *lane = !0;
            }
            self.probe_group(g, block, scratch);
        }
    }

    /// Bulk prefetch for a block `TransFix` pass: begin a session and
    /// probe, per probe group, exactly the cells some member rule could
    /// consume as a seed on tuple `j` — premise within `zs[j]`, fix
    /// target unvalidated, pattern matching. Pattern lanes are hoisted
    /// for **every** rule (the walk re-checks patterns after upgrades
    /// too). Cells no rule can seed from stay unprefetched
    /// ([`block_prefetched`](Self::block_prefetched) is `false`) and
    /// fall back to single-tuple probes.
    pub fn probe_block_seeds(&self, block: &[&Tuple], zs: &[AttrSet], scratch: &mut ProbeScratch) {
        debug_assert_eq!(block.len(), zs.len());
        self.begin_block(block.len(), scratch);
        for i in 0..self.rules.len() {
            self.fill_pattern_lane(i, block, scratch);
        }
        {
            let b = &mut scratch.block;
            for (i, rule) in self.rules.iter().enumerate() {
                let pbase = i * b.lanes;
                let nbase = self.group_of[i] as usize * b.lanes;
                for (j, z) in zs.iter().enumerate() {
                    if rule.premise.is_subset(z)
                        && !z.contains(rule.rhs)
                        && b.pattern[pbase + j / 64] & (1 << (j % 64)) != 0
                    {
                        b.needed[nbase + j / 64] |= 1 << (j % 64);
                    }
                }
            }
        }
        for g in 0..self.groups.len() {
            self.probe_group(g, block, scratch);
        }
    }

    /// The hoisted pattern pre-check of rule `i` on block tuple `j`.
    /// Valid once the rule's lane was filled this session
    /// ([`plan_probe_block`](Self::plan_probe_block) or
    /// [`probe_block_seeds`](Self::probe_block_seeds)).
    #[inline]
    pub fn block_pattern_ok(&self, i: usize, j: usize, scratch: &ProbeScratch) -> bool {
        let b = &scratch.block;
        debug_assert!(j < b.len && b.pattern_done[i]);
        b.pattern[i * b.lanes + j / 64] & (1 << (j % 64)) != 0
    }

    /// `true` iff rule `i`'s probe-group cell for block tuple `j` was
    /// prefetched this session (possibly to an empty hit list).
    #[inline]
    pub fn block_prefetched(&self, i: usize, j: usize, scratch: &ProbeScratch) -> bool {
        let b = &scratch.block;
        b.spans[self.group_of[i] as usize * b.len + j] != NO_SPAN
    }

    /// The prefetched raw key probe of rule `i` on block tuple `j` —
    /// bit-identical to [`probe`](Self::probe) on that tuple. Counts
    /// one *logical* probe on consumption (so `plan_probes` is
    /// block-size independent); `None` when the cell was not
    /// prefetched.
    #[inline]
    pub fn block_probe<'s>(
        &self,
        i: usize,
        j: usize,
        scratch: &'s mut ProbeScratch,
    ) -> Option<&'s [u32]> {
        let g = self.group_of[i] as usize;
        let (start, len) = scratch.block.spans[g * scratch.block.len + j];
        if (start, len) == NO_SPAN {
            return None;
        }
        scratch.probes += 1;
        Some(if start == FAT_SPAN {
            &scratch.block.fat[len as usize][..]
        } else {
            &scratch.block.arena[start as usize..(start + len) as usize]
        })
    }

    /// Block analogue of [`candidates`](Self::candidates): the hit list
    /// of rule `i` on block tuple `j`, empty when the hoisted pattern
    /// bit is clear (no probe counted, like the single-tuple early
    /// return). `None` when the pattern matches but the cell was not
    /// prefetched — the caller falls back to a single-tuple probe.
    #[inline]
    pub fn block_candidates<'s>(
        &self,
        i: usize,
        j: usize,
        scratch: &'s mut ProbeScratch,
    ) -> Option<&'s [u32]> {
        if !self.block_pattern_ok(i, j, scratch) {
            return Some(&[]);
        }
        self.block_probe(i, j, scratch)
    }

    /// The `t[X ∩ Z] = tm[λϕ(X ∩ Z)]` probe of `applicable_rules`
    /// (Sect. 5.2): candidates of rule `i` matching `t` on the
    /// validated subset of its key. Returns `None` when no key
    /// attribute is validated (`mask == 0`); the sub-key index is
    /// served from the plan's lock-free slot table (or the shared
    /// master cache for extra-wide keys), so the steady-state split
    /// needs no `from`/`to` vectors and no lock.
    pub fn validated_candidates<'p>(
        &'p self,
        i: usize,
        t: &Tuple,
        validated: AttrSet,
        scratch: &mut ProbeScratch,
    ) -> Option<PlanHits<'p>> {
        let rule = &self.rules[i];
        let mask = rule.validated_mask(validated);
        if mask == 0 {
            return None;
        }
        if mask.count_ones() as usize == rule.lhs.len() {
            return Some(PlanHits::Borrowed(scratch.lookup(
                &rule.index,
                t,
                &rule.lhs,
            )));
        }
        let sub_key = |mask: u64| -> Vec<AttrId> {
            rule.lhs_m
                .iter()
                .enumerate()
                .filter(|&(j, _)| mask & (1 << j) != 0)
                .map(|(_, &a)| a)
                .collect()
        };
        if (mask as usize) < rule.sub.len() {
            let idx = rule.sub[mask as usize].get_or_init(|| self.master.index_for(&sub_key(mask)));
            Some(PlanHits::Borrowed(
                scratch.lookup_masked(idx, t, &rule.lhs, mask),
            ))
        } else {
            // extra-wide key list: no preallocated slot — go through
            // the shared master cache and copy the (short) hit list
            scratch.fallbacks += 1;
            let idx = self.master.index_for(&sub_key(mask));
            Some(PlanHits::Owned(
                scratch.lookup_masked(&idx, t, &rule.lhs, mask).to_vec(),
            ))
        }
    }

    /// The fix value rule `i` prescribes from master row `id`
    /// (`tm[Bm]`).
    pub fn fix_value(&self, i: usize, id: u32) -> Value {
        *self.master.tuple(id).get(self.rules[i].rhs_m)
    }

    /// The distinct values `tm[Bm]` over rule `i`'s candidate masters,
    /// written into `out` (cleared first) in ascending [`Value`] order
    /// — the same order as
    /// [`distinct_fix_values`](crate::apply::distinct_fix_values).
    pub fn distinct_fix_values_into(
        &self,
        i: usize,
        t: &Tuple,
        scratch: &mut ProbeScratch,
        out: &mut Vec<Value>,
    ) {
        out.clear();
        let rhs_m = self.rules[i].rhs_m;
        let ids = self.candidates(i, t, scratch);
        out.extend(ids.iter().map(|&id| *self.master.tuple(id).get(rhs_m)));
        out.sort_unstable();
        out.dedup();
    }
}

/// Compile-time audit: the plan is shared by reference across repair
/// workers, so it (and its scratch-free parts) must be `Send + Sync`.
#[allow(dead_code)]
fn _send_sync_audit() {
    fn check<T: Send + Sync>() {}
    check::<RulePlan>();
    check::<CompiledRule>();
    check::<ProbeScratch>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::{candidate_masters, distinct_fix_values};
    use crate::parse::parse_rules;
    use certainfix_relation::{tuple, Relation, Schema};
    use std::sync::Arc;

    fn fig1() -> (Arc<Schema>, RuleSet, MasterIndex) {
        let r = Schema::new(
            "R",
            [
                "fn", "ln", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap();
        let rm = Schema::new(
            "Rm",
            [
                "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender",
            ],
        )
        .unwrap();
        let rules = parse_rules(
            r#"
            phi1: match zip ~ zip set AC := AC, str := str, city := city
            phi2: match phn ~ Mphn set fn := FN, ln := LN when type = 2
            phi3: match AC ~ AC, phn ~ Hphn set str := str, city := city, zip := zip when type = 1, AC != '0800'
            "#,
            &r,
            &rm,
        )
        .unwrap();
        let master = Relation::new(
            rm,
            vec![
                tuple![
                    "Robert",
                    "Brady",
                    "131",
                    "6884563",
                    "079172485",
                    "51 Elm Row",
                    "Edi",
                    "EH7 4AH",
                    "11/11/55",
                    "M"
                ],
                tuple![
                    "Mark",
                    "Smith",
                    "020",
                    "6884563",
                    "075568485",
                    "20 Baker St.",
                    "Lnd",
                    "NW1 6XE",
                    "25/12/67",
                    "M"
                ],
            ],
        )
        .unwrap();
        (r, rules, MasterIndex::new(Arc::new(master)))
    }

    fn t1() -> Tuple {
        tuple![
            "Bob",
            "Brady",
            "020",
            "079172485",
            2,
            "501 Elm St.",
            "Edi",
            "EH7 4AH",
            "CD"
        ]
    }

    #[test]
    fn compile_pins_one_index_per_rule() {
        let (_, rules, master) = fig1();
        assert_eq!(master.cached_indexes(), 0);
        let plan = RulePlan::compile(&rules, &master);
        assert_eq!(plan.len(), rules.len());
        assert!(!plan.is_empty());
        // distinct key lists: {zip}, {Mphn}, {AC, Hphn}
        assert_eq!(master.cached_indexes(), 3);
        let builds = master.index_builds();
        // recompiling reuses every cached index
        let _again = RulePlan::compile(&rules, &master);
        assert_eq!(master.index_builds(), builds);
    }

    /// The slot-invalidation contract: recompiling against the
    /// next-generation master yields a plan that sees the delta, while
    /// the old plan keeps answering for its own generation; delete-free
    /// deltas hand the new plan patched indexes, not rebuilds.
    #[test]
    fn recompiled_plans_pick_up_the_next_generation() {
        use certainfix_relation::MasterDelta;
        let (_, rules, master) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        assert_eq!(plan.generation(), 0);
        let builds = master.index_builds();
        let next = master
            .apply_delta(&MasterDelta::new().update(
                1,
                tuple![
                    "Mark",
                    "Smith",
                    "020",
                    "6884563",
                    "075568485",
                    "20 Baker St.",
                    "Lnd",
                    "EH7 4AH", // now shares t1's zip
                    "25/12/67",
                    "M"
                ],
            ))
            .unwrap();
        let plan2 = RulePlan::compile(&rules, &next);
        assert_eq!(plan2.generation(), 1);
        assert_eq!(
            master.index_builds(),
            builds,
            "delete-free deltas patch the pinned indexes instead of rebuilding"
        );
        let mut scratch = ProbeScratch::new();
        // rule 0 keys on zip: the old plan still sees one master row,
        // the recompiled plan sees both
        assert_eq!(plan.candidates(0, &t1(), &mut scratch), &[0]);
        assert_eq!(plan2.candidates(0, &t1(), &mut scratch), &[0, 1]);
    }

    #[test]
    fn plan_candidates_match_legacy_for_every_rule() {
        let (_, rules, master) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        let mut scratch = ProbeScratch::new();
        for (i, rule) in rules.iter() {
            let legacy = candidate_masters(rule, &t1(), &master);
            assert_eq!(plan.candidates(i, &t1(), &mut scratch), &legacy[..], "{i}");
        }
        assert!(scratch.probes() > 0);
    }

    #[test]
    fn steady_state_probes_do_not_allocate() {
        let (_, rules, master) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        let mut scratch = ProbeScratch::new();
        // warmup: the widest key list sizes the buffer
        for (i, _) in rules.iter() {
            let _ = plan.candidates(i, &t1(), &mut scratch);
        }
        let _ = scratch.take_counters();
        for _ in 0..16 {
            for (i, _) in rules.iter() {
                let _ = plan.candidates(i, &t1(), &mut scratch);
            }
        }
        let (probes, allocs, _) = scratch.take_counters();
        assert!(probes > 0, "pattern-passing rules probed");
        assert_eq!(allocs, 0, "steady-state lookups are allocation-free");
    }

    #[test]
    fn validated_candidates_resolve_the_key_split() {
        let (r, rules, master) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        let mut scratch = ProbeScratch::new();
        let phi3 = 5; // phi3.str is rule index 5 (phi1 ×3, phi2 ×2, then phi3)
        let cr = plan.rule(phi3);
        assert_eq!(cr.lhs().len(), 2, "phi3 keys on AC, phn");

        // no validated keys → None
        assert!(plan
            .validated_candidates(phi3, &t1(), AttrSet::EMPTY, &mut scratch)
            .is_none());

        // AC validated only: the sub-key probe on AC alone. t1[AC]=020
        // matches s2's AC.
        let z = AttrSet::singleton(r.attr("AC").unwrap());
        let hits = plan
            .validated_candidates(phi3, &t1(), z, &mut scratch)
            .unwrap();
        assert_eq!(&*hits, &[1]);
        assert!(matches!(hits, PlanHits::Borrowed(_)));

        // both keys validated: the pinned full index answers. t1[phn]
        // is the mobile number, which is nobody's home phone.
        let z2 = z | AttrSet::singleton(r.attr("phn").unwrap());
        let hits2 = plan
            .validated_candidates(phi3, &t1(), z2, &mut scratch)
            .unwrap();
        assert!(hits2.is_empty());

        // the sub-slot was built once and is reused
        let builds = master.index_builds();
        for _ in 0..4 {
            let _ = plan.validated_candidates(phi3, &t1(), z, &mut scratch);
        }
        assert_eq!(master.index_builds(), builds);
    }

    #[test]
    fn distinct_fix_values_into_matches_legacy() {
        let (_, rules, master) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        let mut scratch = ProbeScratch::new();
        let mut out = Vec::new();
        for (i, rule) in rules.iter() {
            plan.distinct_fix_values_into(i, &t1(), &mut scratch, &mut out);
            assert_eq!(out, distinct_fix_values(rule, &t1(), &master), "rule {i}");
        }
    }

    #[test]
    fn null_keys_and_pattern_mismatch_yield_empty() {
        let (r, rules, master) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        let mut scratch = ProbeScratch::new();
        let mut t = t1();
        t.set(r.attr("zip").unwrap(), Value::Null);
        assert!(plan.candidates(0, &t, &mut scratch).is_empty(), "null key");
        let mut t2 = t1();
        t2.set(r.attr("type").unwrap(), Value::int(9));
        // phi2.fn (index 3) requires type = 2
        assert!(
            plan.candidates(3, &t2, &mut scratch).is_empty(),
            "pattern mismatch"
        );
    }

    /// A block of fig. 1 variants exercising every edge the block layer
    /// must agree with the single-tuple path on: shared keys, null
    /// keys, key misses, and pattern mismatches.
    fn fig1_block(r: &Schema) -> Vec<Tuple> {
        let mut tnull = t1();
        tnull.set(r.attr("zip").unwrap(), Value::Null);
        tnull.set(r.attr("phn").unwrap(), Value::Null);
        let mut tmiss = t1();
        tmiss.set(r.attr("zip").unwrap(), Value::str("XX9 9XX"));
        let mut tpat = t1();
        tpat.set(r.attr("type").unwrap(), Value::int(9));
        let mut tother = t1();
        tother.set(r.attr("zip").unwrap(), Value::str("NW1 6XE"));
        tother.set(r.attr("phn").unwrap(), Value::str("6884563"));
        tother.set(r.attr("type").unwrap(), Value::int(1));
        // t1 twice: identical keys must share one resolved hit list
        vec![t1(), tnull, tmiss, tpat, tother, t1()]
    }

    #[test]
    fn rules_sharing_keys_merge_into_probe_groups() {
        let (_, rules, master) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        // distinct (X, Xm): {zip/zip}, {phn/Mphn}, {AC,phn / AC,Hphn}
        assert_eq!(plan.probe_groups(), 3);
        assert_eq!(plan.len(), 8);
        // phi1's three set-clauses share a group, and so on
        let groups: Vec<usize> = (0..plan.len()).map(|i| plan.group_of(i)).collect();
        assert_eq!(groups, [0, 0, 0, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn block_probe_matches_single_tuple_probe() {
        let (r, rules, master) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        let tuples = fig1_block(&r);
        let block: Vec<&Tuple> = tuples.iter().collect();
        let mut single = ProbeScratch::new();
        let mut blocked = ProbeScratch::new();
        plan.begin_block(block.len(), &mut blocked);
        for i in 0..plan.len() {
            plan.plan_probe_block(i, &block, &mut blocked);
        }
        for i in 0..plan.len() {
            for (j, t) in block.iter().enumerate() {
                let want = plan.candidates(i, t, &mut single).to_vec();
                let got = plan
                    .block_candidates(i, j, &mut blocked)
                    .expect("plan_probe_block prefetches every cell");
                assert_eq!(got, &want[..], "rule {i} tuple {j}");
            }
        }
        // logical probe counting: consuming a prefetched cell costs the
        // same one probe the single-tuple path pays
        assert_eq!(blocked.probes(), single.probes());
    }

    #[test]
    fn block_probing_is_allocation_free_once_warm() {
        let (r, rules, master) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        let tuples = fig1_block(&r);
        let block: Vec<&Tuple> = tuples.iter().collect();
        let mut scratch = ProbeScratch::new();
        for round in 0..3 {
            plan.begin_block(block.len(), &mut scratch);
            for i in 0..plan.len() {
                plan.plan_probe_block(i, &block, &mut scratch);
            }
            let (_, allocs, _) = scratch.take_counters();
            if round > 0 {
                assert_eq!(allocs, 0, "warm block sessions allocate nothing");
            }
        }
    }

    #[test]
    fn seed_prefetch_fills_exactly_the_seedable_cells() {
        let (r, rules, master) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        let tuples = fig1_block(&r);
        let block: Vec<&Tuple> = tuples.iter().collect();
        let zip = AttrSet::singleton(r.attr("zip").unwrap());
        // tuple 0 can seed the zip-keyed rules; tuple 1 has nothing
        // validated, so no rule's premise holds there
        let mut zs = vec![AttrSet::EMPTY; block.len()];
        zs[0] = zip;
        let mut scratch = ProbeScratch::new();
        plan.probe_block_seeds(&block, &zs, &mut scratch);
        assert!(
            plan.block_prefetched(0, 0, &scratch),
            "phi1 seeds on tuple 0"
        );
        assert!(!plan.block_prefetched(0, 1, &scratch), "nothing validated");
        // phi2 (premise {phn, type}) is not seedable anywhere
        assert!(!plan.block_prefetched(3, 0, &scratch));
        // prefetched hits equal the single-tuple probe
        let mut single = ProbeScratch::new();
        let want = plan.probe(0, block[0], &mut single).to_vec();
        let got = plan.block_probe(0, 0, &mut scratch).unwrap();
        assert_eq!(got, &want[..]);
    }

    #[test]
    fn wide_keys_fall_back_and_count() {
        let r = Schema::new("W", ["k1", "k2", "k3", "k4", "k5", "k6", "k7", "v"]).unwrap();
        let rm = Schema::new("Wm", ["K1", "K2", "K3", "K4", "K5", "K6", "K7", "V"]).unwrap();
        let rules = parse_rules(
            "wide: match k1 ~ K1, k2 ~ K2, k3 ~ K3, k4 ~ K4, k5 ~ K5, k6 ~ K6, k7 ~ K7 set v := V",
            &r,
            &rm,
        )
        .unwrap();
        let master =
            Relation::new(rm, vec![tuple!["a", "b", "c", "d", "e", "f", "g", "val"]]).unwrap();
        let mi = MasterIndex::new(Arc::new(master));
        let plan = RulePlan::compile(&rules, &mi);
        assert_eq!(plan.rule(0).lhs().len(), 7, "wider than MAX_SUB_KEY_BITS");
        let mut scratch = ProbeScratch::new();
        let t = tuple!["a", "b", "c", "d", "e", "f", "g", "wrong"];
        // full key validated: the pinned index answers, no fallback
        let mut all = AttrSet::EMPTY;
        for name in ["k1", "k2", "k3", "k4", "k5", "k6", "k7"] {
            all.insert(r.attr(name).unwrap());
        }
        let hits = plan.validated_candidates(0, &t, all, &mut scratch).unwrap();
        assert!(matches!(hits, PlanHits::Borrowed(_)));
        assert_eq!(&*hits, &[0]);
        assert_eq!(scratch.fallbacks(), 0);
        // partial key on a 7-wide rule: no preallocated sub-slot —
        // the observable wide-key fallback
        let partial =
            AttrSet::singleton(r.attr("k1").unwrap()) | AttrSet::singleton(r.attr("k3").unwrap());
        let hits = plan
            .validated_candidates(0, &t, partial, &mut scratch)
            .unwrap();
        assert!(matches!(hits, PlanHits::Owned(_)));
        assert_eq!(&*hits, &[0]);
        assert_eq!(scratch.fallbacks(), 1);
        let (_, _, fallbacks) = scratch.take_counters();
        assert_eq!(fallbacks, 1);
        assert_eq!(scratch.fallbacks(), 0, "drained");
    }
}
