//! Compiled rule plans: the allocation-free probe layer.
//!
//! The paper's complexity argument for `TransFix` assumes each "is a
//! master tuple applicable?" check is one hash probe. The convenience
//! path (`candidate_masters` → `MasterIndex::matches_projection` →
//! `index_for`) pays far more than that per probe: an `RwLock` read,
//! a hash of the `Vec<AttrId>` key list, a freshly allocated projection
//! `Vec<Value>`, and a cloned `Vec<u32>` hit list — per rule, per
//! round, per tuple. Following the compile-once-probe-many discipline
//! of compiled/factorised query engines, a [`RulePlan`] is built **once**
//! per `(RuleSet, MasterIndex)` pair and precomputes, per rule:
//!
//! * the pinned [`Arc<KeyIndex>`] for the full key list `Xm` (no lock,
//!   no key hashing on the steady-state path),
//! * the projection layout `X` and the pattern pre-check `tp[Xp]`,
//! * the `λϕ` alignment of each pattern attribute with its master
//!   column (`pattern_master`), used by the suggestion derivation,
//! * the rule's premise set and rhs/master fix column,
//! * a lock-free table of *sub-key* indexes — one slot per subset of
//!   `X` — so the `t[X ∩ Z] = tm[λϕ(X ∩ Z)]` probes of
//!   `applicable_rules` (Sect. 5.2) resolve their validated-key split
//!   without rebuilding `from`/`to` vectors or re-hashing key lists.
//!
//! Per-probe state lives in a caller-owned [`ProbeScratch`]; once its
//! buffer has warmed, a probe performs **zero heap allocations** and
//! returns the hit list by borrow from the pinned index. The scratch
//! also counts probes and buffer (re)allocations, surfaced by the core
//! crate as `MonitorStats::{plan_probes, probe_allocs}`.
//!
//! # Determinism contract
//!
//! For any rule, tuple, and master data, the plan-backed probes return
//! exactly the row ids, in exactly the order, of the legacy
//! [`candidate_masters`](crate::apply::candidate_masters) path — both
//! read the same [`KeyIndex`] maps. Engines may therefore switch
//! between the two per configuration (`--plan on|off` in the bench
//! layer) without perturbing a single outcome.

use std::sync::{Arc, OnceLock};

use certainfix_relation::{AttrId, AttrSet, KeyIndex, MasterIndex, PatternTuple, Tuple, Value};

use crate::ruleset::RuleSet;

/// Caller-owned reusable probe state: the projection buffer plus probe
/// and allocation counters.
///
/// One scratch per worker (or per sequential engine) suffices; the
/// buffer warms to the widest key list it ever projects and is then
/// reused allocation-free. The counters are cumulative until
/// [`take_counters`](Self::take_counters) drains them.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    probe: Vec<Value>,
    probes: u64,
    allocs: u64,
}

impl ProbeScratch {
    /// A fresh scratch (no buffer allocated yet).
    pub fn new() -> ProbeScratch {
        ProbeScratch::default()
    }

    /// Probes performed since the last [`take_counters`](Self::take_counters).
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Probe-buffer (re)allocations since the last drain. After warmup
    /// this stays at zero — the steady-state lookup path is
    /// allocation-free.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Drain `(probes, allocs)`, resetting both counters (the buffer
    /// keeps its capacity).
    pub fn take_counters(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.probes),
            std::mem::take(&mut self.allocs),
        )
    }

    /// Probe `idx` with `t[from]` through the buffer
    /// ([`KeyIndex::lookup_projection`]), counting one probe and any
    /// capacity growth.
    fn lookup<'p>(&mut self, idx: &'p KeyIndex, t: &Tuple, from: &[AttrId]) -> &'p [u32] {
        let cap = self.probe.capacity();
        let hits = idx.lookup_projection(t, from, &mut self.probe);
        if self.probe.capacity() != cap {
            self.allocs += 1;
        }
        self.probes += 1;
        hits
    }

    /// Probe `idx` with the masked subset of `t[attrs]` (ascending
    /// positions).
    fn lookup_masked<'p>(
        &mut self,
        idx: &'p KeyIndex,
        t: &Tuple,
        attrs: &[AttrId],
        mask: u64,
    ) -> &'p [u32] {
        let cap = self.probe.capacity();
        self.probe.clear();
        for (i, &a) in attrs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                self.probe.push(*t.get(a));
            }
        }
        if self.probe.capacity() != cap {
            self.allocs += 1;
        }
        self.probes += 1;
        idx.lookup(&self.probe)
    }
}

/// Widest key list for which per-subset index slots are preallocated
/// (`2^MAX_SUB_KEY_BITS` slots per rule). Wider rules fall back to the
/// shared [`MasterIndex`] cache for their sub-key probes.
const MAX_SUB_KEY_BITS: usize = 6;

/// One rule, compiled against a master index.
#[derive(Debug)]
pub struct CompiledRule {
    lhs: Box<[AttrId]>,
    lhs_m: Box<[AttrId]>,
    lhs_set: AttrSet,
    rhs: AttrId,
    rhs_m: AttrId,
    premise: AttrSet,
    pattern: PatternTuple,
    /// `λϕ` for each pattern attribute: the master column aligned with
    /// it when the pattern attribute is also a key, `None` otherwise.
    pattern_master: Box<[Option<AttrId>]>,
    /// `true` iff some pattern attribute is a key (precomputed for the
    /// no-validated-key branch of `applicable_rules`).
    pattern_on_keys: bool,
    /// The pinned full-key index (`Xm`).
    index: Arc<KeyIndex>,
    /// Lock-free per-subset index slots (`1 << |X|` entries when
    /// `|X| ≤ MAX_SUB_KEY_BITS`, empty otherwise). Slot `m` indexes the
    /// master columns `{Xm[i] : bit i of m}`; built on first use,
    /// read with one atomic load thereafter.
    sub: Box<[OnceLock<Arc<KeyIndex>>]>,
}

impl CompiledRule {
    /// `lhs(ϕ) = X`.
    pub fn lhs(&self) -> &[AttrId] {
        &self.lhs
    }

    /// `lhsm(ϕ) = Xm`.
    pub fn lhs_m(&self) -> &[AttrId] {
        &self.lhs_m
    }

    /// `X` as a set.
    pub fn lhs_set(&self) -> AttrSet {
        self.lhs_set
    }

    /// `rhs(ϕ) = B`.
    pub fn rhs(&self) -> AttrId {
        self.rhs
    }

    /// `rhsm(ϕ) = Bm`.
    pub fn rhs_m(&self) -> AttrId {
        self.rhs_m
    }

    /// `X ∪ Xp` — what must be validated before the rule may fire.
    pub fn premise(&self) -> AttrSet {
        self.premise
    }

    /// The (normalized) pattern `tp[Xp]`.
    pub fn pattern(&self) -> &PatternTuple {
        &self.pattern
    }

    /// `lhsp(ϕ) = Xp`.
    pub fn lhs_p(&self) -> &[AttrId] {
        self.pattern.attrs()
    }

    /// Per pattern cell, the master column `λϕ` aligns it with (when
    /// the pattern attribute is also a key). Parallel to
    /// [`lhs_p`](Self::lhs_p).
    pub fn pattern_master(&self) -> &[Option<AttrId>] {
        &self.pattern_master
    }

    /// `true` iff some pattern attribute is also a key attribute.
    pub fn pattern_on_keys(&self) -> bool {
        self.pattern_on_keys
    }

    /// The pinned full-key index.
    pub fn index(&self) -> &Arc<KeyIndex> {
        &self.index
    }

    /// Bitmask (over lhs positions, ascending) of key attributes in
    /// `validated`.
    pub fn validated_mask(&self, validated: AttrSet) -> u64 {
        let mut mask = 0u64;
        for (i, &a) in self.lhs.iter().enumerate() {
            if validated.contains(a) {
                mask |= 1 << i;
            }
        }
        mask
    }
}

/// Hit list returned by [`RulePlan::validated_candidates`]: borrowed
/// from a pinned index on the steady-state path, owned only on the
/// cold fallback for rules with more key attributes than the slot
/// table covers.
#[derive(Debug)]
pub enum PlanHits<'p> {
    /// Borrowed from a pinned [`KeyIndex`].
    Borrowed(&'p [u32]),
    /// Copied out of the shared master cache (wide-key fallback).
    Owned(Vec<u32>),
}

impl std::ops::Deref for PlanHits<'_> {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        match self {
            PlanHits::Borrowed(s) => s,
            PlanHits::Owned(v) => v,
        }
    }
}

/// A rule set compiled against one master index; see the
/// [module docs](self).
///
/// Also known as the *compiled rule set*: build once per
/// `(RuleSet, MasterIndex)`, share by reference across workers (the
/// plan is `Sync` — its mutable parts are `OnceLock` slots).
#[derive(Debug)]
pub struct RulePlan {
    master: MasterIndex,
    rules: Box<[CompiledRule]>,
}

/// Alias matching the paper-facing name used in docs and the ROADMAP.
pub type CompiledRuleSet = RulePlan;

impl RulePlan {
    /// Compile `rules` against `master`: pin one full-key index per
    /// rule (building it if cold — builds are single-flight in the
    /// [`MasterIndex`]) and precompute the per-rule probe layout.
    pub fn compile(rules: &RuleSet, master: &MasterIndex) -> RulePlan {
        let compiled = rules
            .iter()
            .map(|(_, rule)| {
                let pattern_master: Box<[Option<AttrId>]> = rule
                    .lhs_p()
                    .iter()
                    .map(|&a| rule.master_attr_for(a))
                    .collect();
                let pattern_on_keys = pattern_master.iter().any(Option::is_some);
                let sub_len = if rule.lhs().len() <= MAX_SUB_KEY_BITS {
                    1usize << rule.lhs().len()
                } else {
                    0
                };
                let mut sub = Vec::with_capacity(sub_len);
                sub.resize_with(sub_len, OnceLock::new);
                CompiledRule {
                    lhs: rule.lhs().into(),
                    lhs_m: rule.lhs_m().into(),
                    lhs_set: rule.lhs_set(),
                    rhs: rule.rhs(),
                    rhs_m: rule.rhs_m(),
                    premise: rule.premise(),
                    pattern: rule.pattern().clone(),
                    pattern_master,
                    pattern_on_keys,
                    index: master.index_for(rule.lhs_m()),
                    sub: sub.into_boxed_slice(),
                }
            })
            .collect();
        RulePlan {
            master: master.clone(),
            rules: compiled,
        }
    }

    /// The master index the plan was compiled against.
    pub fn master(&self) -> &MasterIndex {
        &self.master
    }

    /// Number of compiled rules (equals the source rule set's).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` iff the plan compiles no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The compiled form of rule `i`.
    pub fn rule(&self, i: usize) -> &CompiledRule {
        &self.rules[i]
    }

    /// Iterate `(index, compiled rule)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &CompiledRule)> {
        self.rules.iter().enumerate()
    }

    /// The candidate masters of rule `i` on `t` — all `tm` with
    /// `tm[Xm] = t[X]`, empty when the pattern does not match or `t[X]`
    /// contains a null. Identical ids, in identical order, to
    /// [`candidate_masters`](crate::apply::candidate_masters); borrows
    /// the hit list from the pinned index and allocates nothing once
    /// the scratch is warm.
    pub fn candidates<'p>(&'p self, i: usize, t: &Tuple, scratch: &mut ProbeScratch) -> &'p [u32] {
        let rule = &self.rules[i];
        if !rule.pattern.matches(t) {
            return &[];
        }
        self.probe(i, t, scratch)
    }

    /// The raw key probe of rule `i` (no pattern pre-check): all `tm`
    /// with `tm[Xm] = t[X]`.
    pub fn probe<'p>(&'p self, i: usize, t: &Tuple, scratch: &mut ProbeScratch) -> &'p [u32] {
        let rule = &self.rules[i];
        scratch.lookup(&rule.index, t, &rule.lhs)
    }

    /// Look rule `i`'s pinned full-key index up with caller-supplied
    /// probe values (in `Xm` order). Used by offline analyses that
    /// probe with pattern constants rather than a tuple projection.
    pub fn lookup<'p>(&'p self, i: usize, probe: &[Value]) -> &'p [u32] {
        self.rules[i].index.lookup(probe)
    }

    /// The `t[X ∩ Z] = tm[λϕ(X ∩ Z)]` probe of `applicable_rules`
    /// (Sect. 5.2): candidates of rule `i` matching `t` on the
    /// validated subset of its key. Returns `None` when no key
    /// attribute is validated (`mask == 0`); the sub-key index is
    /// served from the plan's lock-free slot table (or the shared
    /// master cache for extra-wide keys), so the steady-state split
    /// needs no `from`/`to` vectors and no lock.
    pub fn validated_candidates<'p>(
        &'p self,
        i: usize,
        t: &Tuple,
        validated: AttrSet,
        scratch: &mut ProbeScratch,
    ) -> Option<PlanHits<'p>> {
        let rule = &self.rules[i];
        let mask = rule.validated_mask(validated);
        if mask == 0 {
            return None;
        }
        if mask.count_ones() as usize == rule.lhs.len() {
            return Some(PlanHits::Borrowed(scratch.lookup(
                &rule.index,
                t,
                &rule.lhs,
            )));
        }
        let sub_key = |mask: u64| -> Vec<AttrId> {
            rule.lhs_m
                .iter()
                .enumerate()
                .filter(|&(j, _)| mask & (1 << j) != 0)
                .map(|(_, &a)| a)
                .collect()
        };
        if (mask as usize) < rule.sub.len() {
            let idx = rule.sub[mask as usize].get_or_init(|| self.master.index_for(&sub_key(mask)));
            Some(PlanHits::Borrowed(
                scratch.lookup_masked(idx, t, &rule.lhs, mask),
            ))
        } else {
            // extra-wide key list: no preallocated slot — go through
            // the shared master cache and copy the (short) hit list
            let idx = self.master.index_for(&sub_key(mask));
            Some(PlanHits::Owned(
                scratch.lookup_masked(&idx, t, &rule.lhs, mask).to_vec(),
            ))
        }
    }

    /// The fix value rule `i` prescribes from master row `id`
    /// (`tm[Bm]`).
    pub fn fix_value(&self, i: usize, id: u32) -> Value {
        *self.master.tuple(id).get(self.rules[i].rhs_m)
    }

    /// The distinct values `tm[Bm]` over rule `i`'s candidate masters,
    /// written into `out` (cleared first) in ascending [`Value`] order
    /// — the same order as
    /// [`distinct_fix_values`](crate::apply::distinct_fix_values).
    pub fn distinct_fix_values_into(
        &self,
        i: usize,
        t: &Tuple,
        scratch: &mut ProbeScratch,
        out: &mut Vec<Value>,
    ) {
        out.clear();
        let rhs_m = self.rules[i].rhs_m;
        let ids = self.candidates(i, t, scratch);
        out.extend(ids.iter().map(|&id| *self.master.tuple(id).get(rhs_m)));
        out.sort_unstable();
        out.dedup();
    }
}

/// Compile-time audit: the plan is shared by reference across repair
/// workers, so it (and its scratch-free parts) must be `Send + Sync`.
#[allow(dead_code)]
fn _send_sync_audit() {
    fn check<T: Send + Sync>() {}
    check::<RulePlan>();
    check::<CompiledRule>();
    check::<ProbeScratch>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::{candidate_masters, distinct_fix_values};
    use crate::parse::parse_rules;
    use certainfix_relation::{tuple, Relation, Schema};
    use std::sync::Arc;

    fn fig1() -> (Arc<Schema>, RuleSet, MasterIndex) {
        let r = Schema::new(
            "R",
            [
                "fn", "ln", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap();
        let rm = Schema::new(
            "Rm",
            [
                "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender",
            ],
        )
        .unwrap();
        let rules = parse_rules(
            r#"
            phi1: match zip ~ zip set AC := AC, str := str, city := city
            phi2: match phn ~ Mphn set fn := FN, ln := LN when type = 2
            phi3: match AC ~ AC, phn ~ Hphn set str := str, city := city, zip := zip when type = 1, AC != '0800'
            "#,
            &r,
            &rm,
        )
        .unwrap();
        let master = Relation::new(
            rm,
            vec![
                tuple![
                    "Robert",
                    "Brady",
                    "131",
                    "6884563",
                    "079172485",
                    "51 Elm Row",
                    "Edi",
                    "EH7 4AH",
                    "11/11/55",
                    "M"
                ],
                tuple![
                    "Mark",
                    "Smith",
                    "020",
                    "6884563",
                    "075568485",
                    "20 Baker St.",
                    "Lnd",
                    "NW1 6XE",
                    "25/12/67",
                    "M"
                ],
            ],
        )
        .unwrap();
        (r, rules, MasterIndex::new(Arc::new(master)))
    }

    fn t1() -> Tuple {
        tuple![
            "Bob",
            "Brady",
            "020",
            "079172485",
            2,
            "501 Elm St.",
            "Edi",
            "EH7 4AH",
            "CD"
        ]
    }

    #[test]
    fn compile_pins_one_index_per_rule() {
        let (_, rules, master) = fig1();
        assert_eq!(master.cached_indexes(), 0);
        let plan = RulePlan::compile(&rules, &master);
        assert_eq!(plan.len(), rules.len());
        assert!(!plan.is_empty());
        // distinct key lists: {zip}, {Mphn}, {AC, Hphn}
        assert_eq!(master.cached_indexes(), 3);
        let builds = master.index_builds();
        // recompiling reuses every cached index
        let _again = RulePlan::compile(&rules, &master);
        assert_eq!(master.index_builds(), builds);
    }

    #[test]
    fn plan_candidates_match_legacy_for_every_rule() {
        let (_, rules, master) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        let mut scratch = ProbeScratch::new();
        for (i, rule) in rules.iter() {
            let legacy = candidate_masters(rule, &t1(), &master);
            assert_eq!(plan.candidates(i, &t1(), &mut scratch), &legacy[..], "{i}");
        }
        assert!(scratch.probes() > 0);
    }

    #[test]
    fn steady_state_probes_do_not_allocate() {
        let (_, rules, master) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        let mut scratch = ProbeScratch::new();
        // warmup: the widest key list sizes the buffer
        for (i, _) in rules.iter() {
            let _ = plan.candidates(i, &t1(), &mut scratch);
        }
        let _ = scratch.take_counters();
        for _ in 0..16 {
            for (i, _) in rules.iter() {
                let _ = plan.candidates(i, &t1(), &mut scratch);
            }
        }
        let (probes, allocs) = scratch.take_counters();
        assert!(probes > 0, "pattern-passing rules probed");
        assert_eq!(allocs, 0, "steady-state lookups are allocation-free");
    }

    #[test]
    fn validated_candidates_resolve_the_key_split() {
        let (r, rules, master) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        let mut scratch = ProbeScratch::new();
        let phi3 = 5; // phi3.str is rule index 5 (phi1 ×3, phi2 ×2, then phi3)
        let cr = plan.rule(phi3);
        assert_eq!(cr.lhs().len(), 2, "phi3 keys on AC, phn");

        // no validated keys → None
        assert!(plan
            .validated_candidates(phi3, &t1(), AttrSet::EMPTY, &mut scratch)
            .is_none());

        // AC validated only: the sub-key probe on AC alone. t1[AC]=020
        // matches s2's AC.
        let z = AttrSet::singleton(r.attr("AC").unwrap());
        let hits = plan
            .validated_candidates(phi3, &t1(), z, &mut scratch)
            .unwrap();
        assert_eq!(&*hits, &[1]);
        assert!(matches!(hits, PlanHits::Borrowed(_)));

        // both keys validated: the pinned full index answers. t1[phn]
        // is the mobile number, which is nobody's home phone.
        let z2 = z | AttrSet::singleton(r.attr("phn").unwrap());
        let hits2 = plan
            .validated_candidates(phi3, &t1(), z2, &mut scratch)
            .unwrap();
        assert!(hits2.is_empty());

        // the sub-slot was built once and is reused
        let builds = master.index_builds();
        for _ in 0..4 {
            let _ = plan.validated_candidates(phi3, &t1(), z, &mut scratch);
        }
        assert_eq!(master.index_builds(), builds);
    }

    #[test]
    fn distinct_fix_values_into_matches_legacy() {
        let (_, rules, master) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        let mut scratch = ProbeScratch::new();
        let mut out = Vec::new();
        for (i, rule) in rules.iter() {
            plan.distinct_fix_values_into(i, &t1(), &mut scratch, &mut out);
            assert_eq!(out, distinct_fix_values(rule, &t1(), &master), "rule {i}");
        }
    }

    #[test]
    fn null_keys_and_pattern_mismatch_yield_empty() {
        let (r, rules, master) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        let mut scratch = ProbeScratch::new();
        let mut t = t1();
        t.set(r.attr("zip").unwrap(), Value::Null);
        assert!(plan.candidates(0, &t, &mut scratch).is_empty(), "null key");
        let mut t2 = t1();
        t2.set(r.attr("type").unwrap(), Value::int(9));
        // phi2.fn (index 3) requires type = 2
        assert!(
            plan.candidates(3, &t2, &mut scratch).is_empty(),
            "pattern mismatch"
        );
    }
}
