//! Application semantics of editing rules (Sect. 2 of the paper).
//!
//! `(ϕ, tm)` *apply to* `t`, yielding `t'` (`t →(ϕ,tm) t'`), iff
//!
//! 1. `t[Xp] ≈ tp[Xp]` — the input matches the rule's pattern,
//! 2. `t[X] = tm[Xm]` — the input and the master tuple agree on the key,
//!
//! and then `t'[B] := tm[Bm]`, all other attributes unchanged.
//!
//! # Pairwise semantics vs. the plan-backed probe path
//!
//! The functions here realize the *pairwise* `(ϕ, tm)` semantics on
//! demand: each call resolves the rule's key index through the
//! [`MasterIndex`] cache (a lock acquisition, a key-list hash, a fresh
//! projection vector, and a cloned hit list). The hot engines —
//! `TransFix`, the chase, and the suggestion derivation — run the same
//! semantics through a [`RulePlan`](crate::plan::RulePlan) compiled
//! once per `(RuleSet, MasterIndex)`: pinned indexes, a reusable
//! [`ProbeScratch`](crate::plan::ProbeScratch) buffer, and borrowed
//! hit lists, making the steady-state probe allocation- and lock-free.
//!
//! **Determinism contract.** Both paths read the same [`KeyIndex`](certainfix_relation::KeyIndex)
//! maps: [`candidate_masters`] and [`RulePlan::candidates`](crate::plan::RulePlan::candidates)
//! return identical row ids in identical order, and
//! [`distinct_fix_values`] and
//! [`RulePlan::distinct_fix_values_into`](crate::plan::RulePlan::distinct_fix_values_into)
//! return identical values in identical (ascending) order — so an
//! engine may be switched between the legacy and the compiled probe
//! layer without perturbing a single outcome. The functions here are
//! kept as the convenient, allocation-per-call shims for analyses and
//! tests.

use certainfix_relation::{MasterIndex, Tuple, Value};

use crate::rule::EditingRule;

/// Does `(ϕ, tm)` apply to `t`?
pub fn applies(rule: &EditingRule, t: &Tuple, tm: &Tuple) -> bool {
    rule.pattern().matches(t) && t.agrees_on(rule.lhs(), tm, rule.lhs_m())
}

/// Apply `(ϕ, tm)` to `t`, producing `t'`, or `None` if it does not
/// apply. The update is performed even if `t[B]` already equals
/// `tm[Bm]` (the fixpoint logic upstream decides whether anything
/// changed).
pub fn apply(rule: &EditingRule, t: &Tuple, tm: &Tuple) -> Option<Tuple> {
    if !applies(rule, t, tm) {
        return None;
    }
    let mut out = t.clone();
    out.set(rule.rhs(), *tm.get(rule.rhs_m()));
    Some(out)
}

/// Master tuples (by row id) that can be used with `rule` on `t`:
/// all `tm` with `tm[Xm] = t[X]`, *provided* `t` matches the rule's
/// pattern. Returns an empty vector when the pattern does not match or
/// `t[X]` contains a null.
pub fn candidate_masters(rule: &EditingRule, t: &Tuple, master: &MasterIndex) -> Vec<u32> {
    if !rule.pattern().matches(t) {
        return Vec::new();
    }
    master.matches_projection(t, rule.lhs(), rule.lhs_m())
}

/// The distinct values `tm[Bm]` over all candidate master tuples,
/// ascending (`Value`'s order — nulls, then integers, then text).
///
/// * an empty result means `(ϕ, ·)` does not apply to `t`;
/// * exactly one value means the rule prescribes a unique fix for
///   `t[B]`;
/// * two or more values are a conflict *within* the rule (the master
///   data is not key-consistent for this rule on this tuple).
///
/// Deduplication is sort-based: `O(n log n)` over the candidate count
/// where the former `Vec::contains` loop was `O(n²)` — master data
/// with thousands of same-key rows (deliberately inconsistent
/// workloads) no longer makes this quadratic.
pub fn distinct_fix_values(rule: &EditingRule, t: &Tuple, master: &MasterIndex) -> Vec<Value> {
    let mut out: Vec<Value> = candidate_masters(rule, t, master)
        .into_iter()
        .map(|id| *master.tuple(id).get(rule.rhs_m()))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::EditingRule;
    use certainfix_relation::tuple;
    use certainfix_relation::{Relation, Schema, Value};
    use std::sync::Arc;

    /// Fig. 1 of the paper, trimmed to the attributes exercised here.
    /// R(fn, ln, AC, phn, type, str, city, zip)
    /// Rm(FN, LN, AC, Hphn, Mphn, str, city, zip)
    fn fixture() -> (Arc<Schema>, Arc<Schema>, MasterIndex) {
        let r = Schema::new("R", ["fn", "ln", "AC", "phn", "type", "str", "city", "zip"]).unwrap();
        let rm = Schema::new(
            "Rm",
            ["FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip"],
        )
        .unwrap();
        let master = Relation::new(
            rm.clone(),
            vec![
                // s1
                tuple![
                    "Robert",
                    "Brady",
                    "131",
                    "6884563",
                    "079172485",
                    "51 Elm Row",
                    "Edi",
                    "EH7 4AH"
                ],
                // s2
                tuple![
                    "Mark",
                    "Smith",
                    "020",
                    "6884563",
                    "075568485",
                    "20 Baker St.",
                    "Lnd",
                    "NW1 6XE"
                ],
            ],
        )
        .unwrap();
        (r, rm, MasterIndex::new(Arc::new(master)))
    }

    /// t1 of Fig. 1: AC=020 is wrong, zip is correct.
    fn t1() -> Tuple {
        tuple![
            "Bob",
            "Brady",
            "020",
            "079172485",
            2,
            "501 Elm St.",
            "Edi",
            "EH7 4AH"
        ]
    }

    #[test]
    fn example4_phi1_applies_via_zip() {
        let (r, rm, m) = fixture();
        // ϕ1 (B = AC): ((zip, zip) → (AC, AC), tp1 = ())
        let phi1 = EditingRule::build(&r, &rm)
            .name("phi1")
            .key("zip", "zip")
            .fix("AC", "AC")
            .finish()
            .unwrap();
        let s1 = m.tuple(0).clone();
        assert!(applies(&phi1, &t1(), &s1));
        let fixed = apply(&phi1, &t1(), &s1).unwrap();
        assert_eq!(fixed.get(r.attr("AC").unwrap()), &Value::str("131"));
        // everything else untouched
        assert_eq!(fixed.get(r.attr("city").unwrap()), &Value::str("Edi"));
        assert_eq!(fixed.diff(&t1()), vec![r.attr("AC").unwrap()]);
    }

    #[test]
    fn example4_phi2_standardizes_fn() {
        let (r, rm, m) = fixture();
        // ϕ2 (B = fn): ((phn, Mphn) → (FN → fn), tp2[type] = (2))
        let phi2 = EditingRule::build(&r, &rm)
            .name("phi2")
            .key("phn", "Mphn")
            .fix("fn", "FN")
            .when_eq("type", 2)
            .finish()
            .unwrap();
        let s1 = m.tuple(0).clone();
        let fixed = apply(&phi2, &t1(), &s1).unwrap();
        assert_eq!(fixed.get(r.attr("fn").unwrap()), &Value::str("Robert"));
    }

    #[test]
    fn pattern_mismatch_blocks_application() {
        let (r, rm, m) = fixture();
        let phi2 = EditingRule::build(&r, &rm)
            .key("phn", "Mphn")
            .fix("fn", "FN")
            .when_eq("type", 1) // t1 has type 2
            .finish()
            .unwrap();
        let s1 = m.tuple(0).clone();
        assert!(!applies(&phi2, &t1(), &s1));
        assert!(apply(&phi2, &t1(), &s1).is_none());
        assert!(candidate_masters(&phi2, &t1(), &m).is_empty());
    }

    #[test]
    fn key_mismatch_blocks_application() {
        let (r, rm, m) = fixture();
        let phi1 = EditingRule::build(&r, &rm)
            .key("zip", "zip")
            .fix("AC", "AC")
            .finish()
            .unwrap();
        let mut t = t1();
        t.set(r.attr("zip").unwrap(), Value::str("XX1 1XX"));
        let s1 = m.tuple(0).clone();
        assert!(!applies(&phi1, &t, &s1));
    }

    #[test]
    fn null_key_blocks_application() {
        let (r, rm, m) = fixture();
        let phi1 = EditingRule::build(&r, &rm)
            .key("zip", "zip")
            .fix("AC", "AC")
            .finish()
            .unwrap();
        let mut t = t1();
        t.set(r.attr("zip").unwrap(), Value::Null);
        assert!(candidate_masters(&phi1, &t, &m).is_empty());
    }

    #[test]
    fn candidate_search_uses_index() {
        let (r, rm, m) = fixture();
        let phi1 = EditingRule::build(&r, &rm)
            .key("zip", "zip")
            .fix("AC", "AC")
            .finish()
            .unwrap();
        assert_eq!(candidate_masters(&phi1, &t1(), &m), vec![0]);
        assert_eq!(
            distinct_fix_values(&phi1, &t1(), &m),
            vec![Value::str("131")]
        );
    }

    #[test]
    fn conflicting_masters_detected() {
        // Two master tuples share a zip but prescribe different cities.
        let r = Schema::new("R", ["zip", "city"]).unwrap();
        let rm = Schema::new("Rm", ["zip", "city"]).unwrap();
        let master = Relation::new(
            rm.clone(),
            vec![
                tuple!["Z1", "Edi"],
                tuple!["Z1", "Lnd"],
                tuple!["Z2", "Gla"],
            ],
        )
        .unwrap();
        let m = MasterIndex::new(Arc::new(master));
        let phi = EditingRule::build(&r, &rm)
            .key("zip", "zip")
            .fix("city", "city")
            .finish()
            .unwrap();
        let t = tuple!["Z1", Value::Null];
        let vals = distinct_fix_values(&phi, &t, &m);
        assert_eq!(vals.len(), 2, "conflicting prescriptions must surface");
        let t2 = tuple!["Z2", Value::Null];
        assert_eq!(distinct_fix_values(&phi, &t2, &m), vec![Value::str("Gla")]);
    }

    /// The sort-dedup satellite: many same-key master rows with few
    /// distinct prescriptions dedup correctly (and in ascending value
    /// order), where the old `Vec::contains` loop was quadratic.
    #[test]
    fn many_candidates_dedup_to_distinct_values() {
        let r = Schema::new("R", ["zip", "city"]).unwrap();
        let rm = Schema::new("Rm", ["zip", "city"]).unwrap();
        let n = 5_000;
        let rows: Vec<_> = (0..n)
            // 7 distinct cities, deliberately not in sorted insertion order
            .map(|i| tuple!["Z1", format!("city-{}", (i * 5) % 7)])
            .collect();
        let master = MasterIndex::new(Arc::new(Relation::new(rm.clone(), rows).unwrap()));
        let phi = EditingRule::build(&r, &rm)
            .key("zip", "zip")
            .fix("city", "city")
            .finish()
            .unwrap();
        let t = tuple!["Z1", Value::Null];
        assert_eq!(candidate_masters(&phi, &t, &master).len(), n as usize);
        let vals = distinct_fix_values(&phi, &t, &master);
        assert_eq!(vals.len(), 7);
        let expected: Vec<Value> = (0..7).map(|i| Value::str(format!("city-{i}"))).collect();
        assert_eq!(vals, expected, "ascending value order");
    }

    #[test]
    fn rule_can_fill_missing_rhs() {
        // t2 of Fig. 1 has str/zip missing; ϕ3-style rule fills zip.
        let (r, rm, m) = fixture();
        let phi3_zip = EditingRule::build(&r, &rm)
            .name("phi3-zip")
            .key("AC", "AC")
            .key("phn", "Hphn")
            .fix("zip", "zip")
            .when_eq("type", 1)
            .when_neq("AC", "0800")
            .finish()
            .unwrap();
        let t2 = tuple![
            "Robert",
            "Brady",
            "020",
            "6884563",
            1,
            Value::Null,
            "Edi",
            Value::Null
        ];
        // t2[AC, phn] matches s2[AC, Hphn]
        let ids = candidate_masters(&phi3_zip, &t2, &m);
        assert_eq!(ids, vec![1]);
        let fixed = apply(&phi3_zip, &t2, m.tuple(1)).unwrap();
        assert_eq!(fixed.get(r.attr("zip").unwrap()), &Value::str("NW1 6XE"));
    }
}
