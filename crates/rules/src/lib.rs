//! Editing rules (eRs).
//!
//! An editing rule over schemas `(R, Rm)` is a pair
//! `ϕ = ((X, Xm) → (B, Bm), tp[Xp])` (Sect. 2 of the paper):
//!
//! * `X` / `Xm` — equal-length lists of distinct attributes of `R` / `Rm`,
//! * `B ∈ R \ X` and `Bm ∈ Rm` — the attribute to fix and its master
//!   source,
//! * `tp[Xp]` — a pattern tuple over `R` restricting when `ϕ` applies.
//!
//! Applying `(ϕ, tm)` to an input tuple `t` (written `t →(ϕ,tm) t'`)
//! requires `t[Xp] ≈ tp[Xp]` and `t[X] = tm[Xm]`, and produces `t'` with
//! `t'[B] := tm[Bm]`.
//!
//! This crate provides:
//! * [`EditingRule`] and its validating [`builder`](EditingRule::build),
//! * [`RuleSet`] — a validated collection over fixed `(R, Rm)`,
//! * [`apply`](mod@apply) — the application semantics, including master-index-backed
//!   candidate search,
//! * [`parse`] — a compact text DSL used by examples and the data
//!   generators,
//! * [`DependencyGraph`] — the rule ordering structure of Sect. 5.1
//!   (Fig. 4) that drives `TransFix`,
//! * [`plan`] — compiled rule plans ([`RulePlan`]): the
//!   build-once/probe-many layer that makes the hot engines'
//!   `tm[Xm] = t[X]` probes allocation- and lock-free.
//!
//! The plan layer carries two of the workspace's determinism
//! obligations — plan ≡ legacy probes, and block probe ≡ single-tuple
//! probe at every block size. `DETERMINISM.md` at the repository root
//! inventories both (D4 and D6) with the tests and CI legs that
//! discharge them.

pub mod apply;
pub mod depgraph;
pub mod error;
pub mod parse;
pub mod plan;
pub mod rule;
pub mod ruleset;

pub use apply::{applies, apply, candidate_masters, distinct_fix_values};
pub use depgraph::DependencyGraph;
pub use error::RuleError;
pub use parse::parse_rules;
pub use plan::{CompiledRule, CompiledRuleSet, PlanHits, ProbeScratch, RulePlan};
pub use rule::{EditingRule, RuleBuilder};
pub use ruleset::RuleSet;

/// Compile-time audit: rule sets and dependency graphs are shared by
/// reference across the parallel batch-repair engine's worker threads.
#[allow(dead_code)]
fn _send_sync_audit() {
    fn check<T: Send + Sync>() {}
    check::<EditingRule>();
    check::<RuleSet>();
    check::<DependencyGraph>();
}
