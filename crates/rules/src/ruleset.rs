//! Rule sets: a validated collection of editing rules over one `(R, Rm)`.

use std::fmt;
use std::sync::Arc;

use certainfix_relation::{AttrId, AttrSet, FxHashMap, Schema};

use crate::error::RuleError;
use crate::rule::EditingRule;

/// A set `Σ` of editing rules over fixed schemas `(R, Rm)`.
///
/// Besides storage, `RuleSet` maintains the derived views used all over
/// the reasoning layer:
/// * `rhs(Σ)` — the set of fixable attributes,
/// * per-attribute buckets `rules_fixing(B)`,
/// * name lookup.
#[derive(Clone, Debug)]
pub struct RuleSet {
    r: Arc<Schema>,
    rm: Arc<Schema>,
    rules: Vec<EditingRule>,
    by_rhs: Vec<Vec<usize>>,
    by_name: FxHashMap<String, usize>,
}

impl RuleSet {
    /// An empty rule set over `(R, Rm)`.
    pub fn new(r: Arc<Schema>, rm: Arc<Schema>) -> RuleSet {
        let by_rhs = vec![Vec::new(); r.len()];
        RuleSet {
            r,
            rm,
            rules: Vec::new(),
            by_rhs,
            by_name: FxHashMap::default(),
        }
    }

    /// Build from rules.
    pub fn from_rules(
        r: Arc<Schema>,
        rm: Arc<Schema>,
        rules: Vec<EditingRule>,
    ) -> Result<RuleSet, RuleError> {
        let mut set = RuleSet::new(r, rm);
        for rule in rules {
            set.push(rule)?;
        }
        Ok(set)
    }

    /// Add a rule, checking that its attribute ids are valid for the
    /// set's schemas.
    pub fn push(&mut self, rule: EditingRule) -> Result<(), RuleError> {
        let r_len = self.r.len() as u16;
        let m_len = self.rm.len() as u16;
        let bad_r = rule
            .lhs()
            .iter()
            .chain(rule.lhs_p())
            .chain(std::iter::once(&rule.rhs()))
            .any(|a| a.0 >= r_len);
        let bad_m = rule
            .lhs_m()
            .iter()
            .chain(std::iter::once(&rule.rhs_m()))
            .any(|a| a.0 >= m_len);
        if bad_r || bad_m {
            return Err(RuleError::SchemaMismatch {
                rule: rule.name().to_string(),
                detail: format!(
                    "attribute id out of range for schemas {}/{}",
                    self.r.name(),
                    self.rm.name()
                ),
            });
        }
        let idx = self.rules.len();
        self.by_rhs[rule.rhs().index()].push(idx);
        self.by_name.insert(rule.name().to_string(), idx);
        self.rules.push(rule);
        Ok(())
    }

    /// The input schema `R`.
    pub fn r_schema(&self) -> &Arc<Schema> {
        &self.r
    }

    /// The master schema `Rm`.
    pub fn m_schema(&self) -> &Arc<Schema> {
        &self.rm
    }

    /// Number of rules (`card(Σ)`).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` iff there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Rule by index.
    pub fn rule(&self, i: usize) -> &EditingRule {
        &self.rules[i]
    }

    /// Rule by name.
    pub fn by_name(&self, name: &str) -> Option<&EditingRule> {
        self.by_name.get(name).map(|&i| &self.rules[i])
    }

    /// Iterate `(index, rule)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &EditingRule)> {
        self.rules.iter().enumerate()
    }

    /// All rules.
    pub fn rules(&self) -> &[EditingRule] {
        &self.rules
    }

    /// Indices of rules with `rhs(ϕ) = b`.
    pub fn rules_fixing(&self, b: AttrId) -> &[usize] {
        &self.by_rhs[b.index()]
    }

    /// `rhs(Σ)` — attributes some rule can fix.
    pub fn fixable_attrs(&self) -> AttrSet {
        self.rules.iter().map(|r| r.rhs()).collect()
    }

    /// `R \ rhs(Σ)` — attributes *no* rule can fix; these must belong to
    /// `Z` in any certain region (their correctness can only come from
    /// the user). See Example 8's `item` attribute.
    pub fn unfixable_attrs(&self) -> AttrSet {
        AttrSet::full(self.r.len()) - self.fixable_attrs()
    }

    /// Attributes appearing anywhere in `Σ` on the `R` side
    /// (`Z_Σ` in the proofs of Prop. 8/15).
    pub fn touched_attrs(&self) -> AttrSet {
        let mut s = AttrSet::EMPTY;
        for rule in &self.rules {
            s |= rule.premise();
            s.insert(rule.rhs());
        }
        s
    }

    /// All `R`-side constants mentioned in rule patterns plus all values
    /// used by the reasoning layer's active-domain constructions.
    pub fn pattern_constants(&self) -> Vec<certainfix_relation::Value> {
        let mut out = Vec::new();
        for rule in &self.rules {
            for cell in rule.pattern().cells() {
                let v = match cell {
                    certainfix_relation::PatternValue::Const(v)
                    | certainfix_relation::PatternValue::Neq(v) => *v,
                    certainfix_relation::PatternValue::Wildcard => continue,
                };
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Render all rules in paper syntax.
    pub fn render(&self) -> String {
        self.rules
            .iter()
            .map(|rule| rule.render(&self.r, &self.rm))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Σ with {} rule(s) on ({}, {})",
            self.rules.len(),
            self.r.name(),
            self.rm.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certainfix_relation::Value;

    fn schemas() -> (Arc<Schema>, Arc<Schema>) {
        let r = Schema::new("R", ["a", "b", "c", "d"]).unwrap();
        let rm = Schema::new("Rm", ["a", "b", "c", "d"]).unwrap();
        (r, rm)
    }

    fn rule(r: &Arc<Schema>, rm: &Arc<Schema>, name: &str, key: &str, fix: &str) -> EditingRule {
        EditingRule::build(r, rm)
            .name(name)
            .key(key, key)
            .fix(fix, fix)
            .finish()
            .unwrap()
    }

    #[test]
    fn push_and_lookup() {
        let (r, rm) = schemas();
        let mut set = RuleSet::new(r.clone(), rm.clone());
        assert!(set.is_empty());
        set.push(rule(&r, &rm, "p1", "a", "b")).unwrap();
        set.push(rule(&r, &rm, "p2", "b", "c")).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.by_name("p2").unwrap().name(), "p2");
        assert!(set.by_name("p9").is_none());
        assert_eq!(set.rule(0).name(), "p1");
        assert_eq!(set.iter().count(), 2);
        assert_eq!(set.rules_fixing(r.attr("c").unwrap()), &[1]);
        assert!(set.rules_fixing(r.attr("a").unwrap()).is_empty());
    }

    #[test]
    fn fixable_and_unfixable() {
        let (r, rm) = schemas();
        let set = RuleSet::from_rules(
            r.clone(),
            rm.clone(),
            vec![rule(&r, &rm, "p1", "a", "b"), rule(&r, &rm, "p2", "b", "c")],
        )
        .unwrap();
        let fixable = set.fixable_attrs();
        assert!(fixable.contains(r.attr("b").unwrap()));
        assert!(fixable.contains(r.attr("c").unwrap()));
        assert!(!fixable.contains(r.attr("a").unwrap()));
        let unfixable = set.unfixable_attrs();
        assert!(unfixable.contains(r.attr("a").unwrap()));
        assert!(unfixable.contains(r.attr("d").unwrap()));
        assert_eq!(fixable.union(&unfixable), AttrSet::full(4));
    }

    #[test]
    fn touched_attrs_includes_pattern() {
        let (r, rm) = schemas();
        let phi = EditingRule::build(&r, &rm)
            .name("p")
            .key("a", "a")
            .fix("b", "b")
            .when_eq("c", 1)
            .finish()
            .unwrap();
        let set = RuleSet::from_rules(r.clone(), rm, vec![phi]).unwrap();
        let touched = set.touched_attrs();
        assert_eq!(touched.len(), 3);
        assert!(!touched.contains(r.attr("d").unwrap()));
        assert_eq!(set.pattern_constants(), vec![Value::int(1)]);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let (r, rm) = schemas();
        let wide_r = Schema::new("W", ["a", "b", "c", "d", "e"]).unwrap();
        let phi = EditingRule::build(&wide_r, &rm)
            .name("wide")
            .key("e", "a")
            .fix("a", "a")
            .finish()
            .unwrap();
        let mut set = RuleSet::new(r, rm);
        assert!(matches!(
            set.push(phi),
            Err(RuleError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn render_and_display() {
        let (r, rm) = schemas();
        let set = RuleSet::from_rules(r.clone(), rm.clone(), vec![rule(&r, &rm, "p1", "a", "b")])
            .unwrap();
        assert!(set.render().contains("p1"));
        assert_eq!(set.to_string(), "Σ with 1 rule(s) on (R, Rm)");
    }
}
