//! The rule dependency graph of Sect. 5.1 (Fig. 4).
//!
//! For a rule set `Σ`, the dependency graph `G = (V, E)` has one node
//! per rule and an edge `(u, v)` iff `Bu ∈ Xv ∪ Xpv` — fixing `rhs(ϕu)`
//! may enable `ϕv`, so `ϕu` is applied before `ϕv`. The graph is
//! computed once per `Σ` and reused across all input tuples
//! (`TransFix` walks it).

use std::fmt;

use certainfix_relation::AttrSet;

use crate::ruleset::RuleSet;

/// Dependency graph over the rules of a [`RuleSet`], by rule index.
#[derive(Clone, Debug)]
pub struct DependencyGraph {
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
}

impl DependencyGraph {
    /// Build the graph for `Σ`.
    pub fn new(rules: &RuleSet) -> DependencyGraph {
        let n = rules.len();
        let premises: Vec<AttrSet> = rules.iter().map(|(_, r)| r.premise()).collect();
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for (u, rule_u) in rules.iter() {
            let b = rule_u.rhs();
            for v in 0..n {
                if u != v && premises[v].contains(b) {
                    succ[u].push(v);
                    pred[v].push(u);
                }
            }
        }
        DependencyGraph { succ, pred }
    }

    /// Number of nodes (= rules).
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// `true` iff there are no rules.
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Rules whose applicability may be enabled by applying rule `u`.
    pub fn successors(&self, u: usize) -> &[usize] {
        &self.succ[u]
    }

    /// Rules whose application may enable rule `v`.
    pub fn predecessors(&self, v: usize) -> &[usize] {
        &self.pred[v]
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Rules with no predecessor — applicable only from the initial
    /// validated region.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&v| self.pred[v].is_empty())
            .collect()
    }

    /// Render in Graphviz `dot` syntax, naming nodes by rule name.
    pub fn render_dot(&self, rules: &RuleSet) -> String {
        let mut out = String::from("digraph sigma {\n");
        for (i, rule) in rules.iter() {
            out.push_str(&format!("  n{i} [label=\"{}\"];\n", rule.name()));
        }
        for (u, vs) in self.succ.iter().enumerate() {
            for &v in vs {
                out.push_str(&format!("  n{u} -> n{v};\n"));
            }
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for DependencyGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dependency graph: {} node(s), {} edge(s)",
            self.len(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_rules;
    use certainfix_relation::Schema;

    fn sigma0() -> RuleSet {
        let r = Schema::new(
            "R",
            [
                "fn", "ln", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap();
        let rm = Schema::new(
            "Rm",
            [
                "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender",
            ],
        )
        .unwrap();
        parse_rules(
            r#"
            phi1: match zip ~ zip set AC := AC, str := str, city := city
            phi2: match phn ~ Mphn set fn := FN, ln := LN when type = 2
            phi3: match AC ~ AC, phn ~ Hphn set str := str, city := city, zip := zip when type = 1, AC != '0800'
            phi4: match AC ~ AC set city := city when AC = '0800'
            "#,
            &r,
            &rm,
        )
        .unwrap()
    }

    fn idx(rules: &RuleSet, name: &str) -> usize {
        rules.iter().find(|(_, r)| r.name() == name).unwrap().0
    }

    #[test]
    fn example11_edges() {
        // Fig. 4 of the paper: ϕ1 (fix AC) feeds ϕ6–ϕ8 (lhs {AC, phn})
        // and ϕ9 (lhs/pattern {AC}); ϕ8 (fix zip) feeds ϕ1–ϕ3.
        let rules = sigma0();
        let g = DependencyGraph::new(&rules);
        assert_eq!(g.len(), 9);
        let phi1_ac = idx(&rules, "phi1.AC");
        let phi3_str = idx(&rules, "phi3.str");
        let phi3_zip = idx(&rules, "phi3.zip");
        let phi4 = idx(&rules, "phi4");
        let succ = g.successors(phi1_ac);
        assert!(succ.contains(&phi3_str));
        assert!(succ.contains(&phi4), "AC is a pattern attr of ϕ4");
        // ϕ3.zip fixes zip, enabling all three ϕ1.* rules
        let succ_zip = g.successors(phi3_zip);
        assert!(succ_zip.contains(&phi1_ac));
        assert_eq!(
            succ_zip.len(),
            3,
            "zip only occurs in the lhs of the phi1 family"
        );
        // predecessors mirror successors
        assert!(g.predecessors(phi4).contains(&phi1_ac));
        let edges = g.edge_count();
        let mirrored: usize = (0..g.len()).map(|v| g.predecessors(v).len()).sum();
        assert_eq!(edges, mirrored);
    }

    #[test]
    fn no_self_loops() {
        let rules = sigma0();
        let g = DependencyGraph::new(&rules);
        for u in 0..g.len() {
            assert!(!g.successors(u).contains(&u));
        }
    }

    #[test]
    fn roots_have_no_predecessors() {
        let rules = sigma0();
        let g = DependencyGraph::new(&rules);
        for r in g.roots() {
            assert!(g.predecessors(r).is_empty());
        }
        // ϕ2 rules key on phn (never fixed by Σ0) with pattern on type
        // (never fixed either): they are roots.
        let phi2_fn = idx(&rules, "phi2.fn");
        assert!(g.roots().contains(&phi2_fn));
    }

    #[test]
    fn dot_rendering() {
        let rules = sigma0();
        let g = DependencyGraph::new(&rules);
        let dot = g.render_dot(&rules);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("phi1.AC"));
        assert!(dot.contains("->"));
        assert!(g.to_string().contains("9 node(s)"));
    }

    #[test]
    fn empty_ruleset() {
        let r = Schema::new("R", ["a"]).unwrap();
        let rules = RuleSet::new(r.clone(), r);
        let g = DependencyGraph::new(&rules);
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
        assert!(g.roots().is_empty());
    }
}
