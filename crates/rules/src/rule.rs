//! The [`EditingRule`] type and its validating builder.

use std::fmt;
use std::sync::Arc;

use certainfix_relation::{AttrId, AttrSet, PatternTuple, PatternValue, Schema, Value};

use crate::error::RuleError;

/// An editing rule `ϕ = ((X, Xm) → (B, Bm), tp[Xp])` over `(R, Rm)`.
///
/// Invariants (enforced by [`RuleBuilder`]):
/// * `|X| = |Xm| ≥ 1`, `X` has distinct attributes,
/// * `B ∉ X`,
/// * all `R`-side attribute ids are valid in `R`, all `Rm`-side ids in
///   `Rm`,
/// * the stored pattern is in *normal form* (no wildcard cells; Sect. 2,
///   Notations (3)) — wildcards given to the builder are dropped, which
///   preserves the rule's semantics exactly.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EditingRule {
    name: String,
    lhs: Vec<AttrId>,
    lhs_m: Vec<AttrId>,
    rhs: AttrId,
    rhs_m: AttrId,
    pattern: PatternTuple,
}

impl EditingRule {
    /// Start building a rule against a pair of schemas.
    pub fn build(r: &Arc<Schema>, rm: &Arc<Schema>) -> RuleBuilder {
        RuleBuilder {
            r: r.clone(),
            rm: rm.clone(),
            name: String::new(),
            lhs: Vec::new(),
            lhs_m: Vec::new(),
            rhs: None,
            pattern: Vec::new(),
            error: None,
        }
    }

    /// The rule's name (`ϕ1`, `phi3`, ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `lhs(ϕ) = X` — the `R`-side key attributes.
    pub fn lhs(&self) -> &[AttrId] {
        &self.lhs
    }

    /// `lhsm(ϕ) = Xm` — the `Rm`-side key attributes.
    pub fn lhs_m(&self) -> &[AttrId] {
        &self.lhs_m
    }

    /// `rhs(ϕ) = B` — the attribute this rule fixes.
    pub fn rhs(&self) -> AttrId {
        self.rhs
    }

    /// `rhsm(ϕ) = Bm` — the master attribute whose value is copied.
    pub fn rhs_m(&self) -> AttrId {
        self.rhs_m
    }

    /// `lhsp(ϕ) = Xp` — the attributes constrained by the pattern.
    pub fn lhs_p(&self) -> &[AttrId] {
        self.pattern.attrs()
    }

    /// The (normalized) pattern tuple `tp[Xp]`.
    pub fn pattern(&self) -> &PatternTuple {
        &self.pattern
    }

    /// `X` as a set.
    pub fn lhs_set(&self) -> AttrSet {
        self.lhs.iter().copied().collect()
    }

    /// `X ∪ Xp` — everything that must be validated before the rule may
    /// be applied to a tuple marked by a region (Sect. 3).
    pub fn premise(&self) -> AttrSet {
        self.lhs_set() | self.pattern.attr_set()
    }

    /// The master attribute in `Xm` aligned with `R`-attribute `a ∈ X`
    /// (the `λϕ(·)` mapping of Sect. 5.2).
    pub fn master_attr_for(&self, a: AttrId) -> Option<AttrId> {
        self.lhs.iter().position(|&x| x == a).map(|i| self.lhs_m[i])
    }

    /// `true` iff `Xp ⊆ X` — the *direct fix* restriction (a) of
    /// Sect. 4.1, special case (5).
    pub fn is_direct(&self) -> bool {
        self.pattern.attr_set().is_subset(&self.lhs_set())
    }

    /// Replace the pattern (used to derive the refined rules `ϕ+` of
    /// `Σ_t[Z]`, Sect. 5.2). The new pattern is normalized.
    pub fn with_pattern(&self, pattern: PatternTuple) -> EditingRule {
        EditingRule {
            pattern: pattern.normalize(),
            ..self.clone()
        }
    }

    /// Render against the schemas, mirroring the paper's syntax:
    /// `ϕ3: (([AC, phn], [AC, Hphn]) → (str, str), tp[type=1, AC≠0800])`.
    pub fn render(&self, r: &Schema, rm: &Schema) -> String {
        format!(
            "{}: (({}, {}) → ({}, {}), tp{})",
            self.name,
            r.render_attrs(&self.lhs),
            rm.render_attrs(&self.lhs_m),
            r.attr_name(self.rhs),
            rm.attr_name(self.rhs_m),
            self.pattern.render(r)
        )
    }
}

impl fmt::Display for EditingRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: (({:?}, {:?}) → ({:?}, {:?}), |tp|={})",
            self.name,
            self.lhs,
            self.lhs_m,
            self.rhs,
            self.rhs_m,
            self.pattern.len()
        )
    }
}

/// Fluent, validating builder for [`EditingRule`].
///
/// Attribute names are resolved eagerly; the first error is remembered
/// and returned by [`RuleBuilder::finish`].
pub struct RuleBuilder {
    r: Arc<Schema>,
    rm: Arc<Schema>,
    name: String,
    lhs: Vec<AttrId>,
    lhs_m: Vec<AttrId>,
    rhs: Option<(AttrId, AttrId)>,
    pattern: Vec<(AttrId, PatternValue)>,
    error: Option<RuleError>,
}

impl RuleBuilder {
    /// Name the rule.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Add a key pair: input attribute `x ∈ X` matched against master
    /// attribute `xm ∈ Xm`.
    pub fn key(mut self, x: &str, xm: &str) -> Self {
        if self.error.is_some() {
            return self;
        }
        match (self.r.attr_or_err(x), self.rm.attr_or_err(xm)) {
            (Ok(a), Ok(b)) => {
                self.lhs.push(a);
                self.lhs_m.push(b);
            }
            (Err(e), _) | (_, Err(e)) => self.error = Some(e.into()),
        }
        self
    }

    /// Set the fixed attribute `B` and its master source `Bm`.
    pub fn fix(mut self, b: &str, bm: &str) -> Self {
        if self.error.is_some() {
            return self;
        }
        match (self.r.attr_or_err(b), self.rm.attr_or_err(bm)) {
            (Ok(a), Ok(c)) => self.rhs = Some((a, c)),
            (Err(e), _) | (_, Err(e)) => self.error = Some(e.into()),
        }
        self
    }

    /// Add a pattern condition `t[attr] = v`.
    pub fn when_eq(mut self, attr: &str, v: impl Into<Value>) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.r.attr_or_err(attr) {
            Ok(a) => self.pattern.push((a, PatternValue::Const(v.into()))),
            Err(e) => self.error = Some(e.into()),
        }
        self
    }

    /// Add a pattern condition `t[attr] ≠ v`.
    pub fn when_neq(mut self, attr: &str, v: impl Into<Value>) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.r.attr_or_err(attr) {
            Ok(a) => self.pattern.push((a, PatternValue::Neq(v.into()))),
            Err(e) => self.error = Some(e.into()),
        }
        self
    }

    /// Add an explicit wildcard condition (a no-op after normalization;
    /// accepted so DSL input like `tp1 = ()` round-trips).
    pub fn when_any(mut self, attr: &str) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.r.attr_or_err(attr) {
            Ok(a) => self.pattern.push((a, PatternValue::Wildcard)),
            Err(e) => self.error = Some(e.into()),
        }
        self
    }

    /// Validate and produce the rule.
    pub fn finish(self) -> Result<EditingRule, RuleError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let name = if self.name.is_empty() {
            "<unnamed>".to_string()
        } else {
            self.name
        };
        if self.lhs.is_empty() {
            return Err(RuleError::EmptyLhs { rule: name });
        }
        if self.lhs.len() != self.lhs_m.len() {
            return Err(RuleError::LhsArityMismatch {
                rule: name,
                lhs: self.lhs.len(),
                lhs_m: self.lhs_m.len(),
            });
        }
        let mut seen = AttrSet::EMPTY;
        for &a in &self.lhs {
            if !seen.insert(a) {
                return Err(RuleError::DuplicateLhsAttr {
                    rule: name,
                    attr: self.r.attr_name(a).to_string(),
                });
            }
        }
        let (rhs, rhs_m) = self.rhs.ok_or_else(|| RuleError::SchemaMismatch {
            rule: name.clone(),
            detail: "no fixed attribute; call .fix(B, Bm)".into(),
        })?;
        if seen.contains(rhs) {
            return Err(RuleError::RhsInLhs {
                rule: name,
                attr: self.r.attr_name(rhs).to_string(),
            });
        }
        // Deduplicate pattern attributes: later conditions override
        // earlier ones (mirrors PatternTuple::refined_with).
        let pattern = PatternTuple::empty()
            .refined_with(&self.pattern)
            .normalize();
        Ok(EditingRule {
            name,
            lhs: self.lhs,
            lhs_m: self.lhs_m,
            rhs,
            rhs_m,
            pattern,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schemas() -> (Arc<Schema>, Arc<Schema>) {
        let r = Schema::new(
            "R",
            [
                "fn", "ln", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap();
        let rm = Schema::new(
            "Rm",
            [
                "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender",
            ],
        )
        .unwrap();
        (r, rm)
    }

    #[test]
    fn phi3_from_the_paper() {
        // ϕ3: (([AC, phn], [AC, Hphn]) → (str, str), tp[type, AC] = (1, 0800̄))
        let (r, rm) = schemas();
        let phi3 = EditingRule::build(&r, &rm)
            .name("phi3")
            .key("AC", "AC")
            .key("phn", "Hphn")
            .fix("str", "str")
            .when_eq("type", 1)
            .when_neq("AC", "0800")
            .finish()
            .unwrap();
        assert_eq!(phi3.name(), "phi3");
        assert_eq!(phi3.lhs().len(), 2);
        assert_eq!(phi3.lhs_m().len(), 2);
        assert_eq!(r.attr_name(phi3.rhs()), "str");
        assert_eq!(rm.attr_name(phi3.rhs_m()), "str");
        assert_eq!(phi3.lhs_p().len(), 2);
        assert!(!phi3.is_direct(), "type is a pattern attr outside X");
        let rendered = phi3.render(&r, &rm);
        assert!(rendered.contains("[AC, phn]"));
        assert!(rendered.contains("AC≠0800"));
        // premise = {AC, phn} ∪ {type, AC}
        let premise = phi3.premise();
        assert_eq!(premise.len(), 3);
        assert!(premise.contains(r.attr("type").unwrap()));
    }

    #[test]
    fn master_attr_alignment() {
        let (r, rm) = schemas();
        let phi = EditingRule::build(&r, &rm)
            .key("AC", "AC")
            .key("phn", "Hphn")
            .fix("city", "city")
            .finish()
            .unwrap();
        assert_eq!(
            phi.master_attr_for(r.attr("phn").unwrap()),
            Some(rm.attr("Hphn").unwrap())
        );
        assert_eq!(phi.master_attr_for(r.attr("zip").unwrap()), None);
    }

    #[test]
    fn rhs_in_lhs_rejected() {
        let (r, rm) = schemas();
        let err = EditingRule::build(&r, &rm)
            .name("bad")
            .key("zip", "zip")
            .fix("zip", "zip")
            .finish()
            .unwrap_err();
        assert!(matches!(err, RuleError::RhsInLhs { .. }));
    }

    #[test]
    fn duplicate_lhs_rejected() {
        let (r, rm) = schemas();
        let err = EditingRule::build(&r, &rm)
            .name("bad")
            .key("zip", "zip")
            .key("zip", "city")
            .fix("AC", "AC")
            .finish()
            .unwrap_err();
        assert!(matches!(err, RuleError::DuplicateLhsAttr { .. }));
    }

    #[test]
    fn empty_lhs_rejected() {
        let (r, rm) = schemas();
        let err = EditingRule::build(&r, &rm)
            .name("bad")
            .fix("AC", "AC")
            .finish()
            .unwrap_err();
        assert!(matches!(err, RuleError::EmptyLhs { .. }));
    }

    #[test]
    fn missing_fix_rejected() {
        let (r, rm) = schemas();
        let err = EditingRule::build(&r, &rm)
            .name("bad")
            .key("zip", "zip")
            .finish()
            .unwrap_err();
        assert!(matches!(err, RuleError::SchemaMismatch { .. }));
    }

    #[test]
    fn unknown_attribute_reported() {
        let (r, rm) = schemas();
        let err = EditingRule::build(&r, &rm)
            .name("bad")
            .key("nope", "zip")
            .fix("AC", "AC")
            .finish()
            .unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn wildcards_are_normalized_away() {
        let (r, rm) = schemas();
        let rule = EditingRule::build(&r, &rm)
            .key("zip", "zip")
            .fix("AC", "AC")
            .when_any("type")
            .finish()
            .unwrap();
        assert!(rule.pattern().is_empty());
        assert!(rule.is_direct());
    }

    #[test]
    fn repeated_pattern_attr_last_wins() {
        let (r, rm) = schemas();
        let rule = EditingRule::build(&r, &rm)
            .key("zip", "zip")
            .fix("AC", "AC")
            .when_eq("type", 1)
            .when_eq("type", 2)
            .finish()
            .unwrap();
        let cell = rule.pattern().cell(r.attr("type").unwrap()).unwrap();
        assert_eq!(cell, &PatternValue::Const(Value::int(2)));
        assert_eq!(rule.pattern().len(), 1);
    }

    #[test]
    fn with_pattern_normalizes() {
        let (r, rm) = schemas();
        let rule = EditingRule::build(&r, &rm)
            .key("zip", "zip")
            .fix("AC", "AC")
            .finish()
            .unwrap();
        let ty = r.attr("type").unwrap();
        let refined = rule.with_pattern(PatternTuple::new(vec![(ty, PatternValue::Wildcard)]));
        assert!(refined.pattern().is_empty());
        assert_eq!(refined.name(), rule.name());
    }
}
