//! # certain-fix
//!
//! A Rust implementation of *"Towards Certain Fixes with Editing Rules
//! and Master Data"* (Fan, Li, Ma, Tang, Yu — VLDB 2010; extended in
//! The VLDB Journal 21(2), 2012).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`relation`] — values, schemas, tuples, patterns, relations, indexes;
//! * [`rules`] — editing rules, the rule DSL, application semantics,
//!   dependency graphs;
//! * [`reasoning`] — regions, the unique-fix chase, consistency/coverage
//!   checking, direct fixes, Z-problems, certain-region derivation and
//!   suggestions;
//! * [`cfd`] — conditional functional dependencies and the `IncRep`
//!   repairing baseline;
//! * [`datagen`] — the synthetic HOSP / DBLP workloads and the dirty-data
//!   generator;
//! * [`core`] — the interactive `CertainFix` / `CertainFix+` monitoring
//!   framework, user oracles, evaluation metrics, the single-stream
//!   [`RepairSession`](certainfix_core::RepairSession) surface, and the
//!   multi-session [`RepairService`](certainfix_core::RepairService)
//!   multiplexer;
//! * [`net`] — the network ingest lane: the length-prefixed versioned
//!   wire codec, the TCP/unix-socket
//!   [`RepairServer`](certainfix_net::RepairServer) mapping each
//!   connection onto one service lane, and the
//!   [`RepairClient`](certainfix_net::RepairClient) that reassembles
//!   reports bit-identically to an in-process drain.
//!
//! The determinism guarantees these layers maintain (and the tests
//! discharging each one) are inventoried in `DETERMINISM.md` at the
//! repository root.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`, which walks through Fig. 1 of the paper:
//! a supplier tuple with an inconsistent area code / city pair is given a
//! certain fix from master data after the user asserts a single zip code.

pub use certainfix_cfd as cfd;
pub use certainfix_core as core;
pub use certainfix_datagen as datagen;
pub use certainfix_net as net;
pub use certainfix_reasoning as reasoning;
pub use certainfix_relation as relation;
pub use certainfix_rules as rules;

/// Commonly used items, importable as `use certain_fix::prelude::*`.
pub mod prelude {
    pub use certainfix_core::{
        BatchesSource, CertainFix, CertainFixConfig, ChannelSource, DataMonitor, FixOutcome,
        InitialRegion, NamedSessionReport, RepairService, RepairServiceBuilder, RepairSession,
        RepairSessionBuilder, ServiceOptions, ServiceReport, ServiceStream, SessionReport,
        SimulatedUser, SliceSource, TupleSource, UserOracle,
    };
    pub use certainfix_net::{Frame, RepairClient, RepairServer, WireError};
    pub use certainfix_reasoning::{Chase, ChaseResult, Region, RegionCatalog};
    pub use certainfix_relation::{
        AttrId, AttrSet, MasterIndex, PatternTuple, PatternValue, Relation, Schema, Tableau, Tuple,
        Value,
    };
    pub use certainfix_rules::{parse_rules, DependencyGraph, EditingRule, RuleSet};
}
