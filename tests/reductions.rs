//! Behavioural witnesses of the paper's hardness reductions (Sect. 4).
//!
//! The complexity proofs construct editing-rule instances from 3SAT and
//! set-cover instances; these tests build the same gadgets and check
//! that our decision procedures agree with the source instances'
//! satisfiability — i.e. the reductions "run" correctly on our engine:
//!
//! * Theorem 6 (Z-validating is NP-complete): `z_validate` answers
//!   "yes" exactly for satisfiable 3SAT formulas;
//! * Theorem 9 (Z-counting is #P-complete): the reduction is
//!   parsimonious — `z_count` equals the number of satisfying
//!   assignments;
//! * Theorem 12 (Z-minimum is NP-complete): `z_minimum` recovers the
//!   optimal set-cover size.

use std::sync::Arc;

use certain_fix::reasoning::{z_count, z_minimum, z_validate, ZBudget};
use certain_fix::relation::{MasterIndex, Relation, Schema, Tuple, Value};
use certain_fix::rules::{EditingRule, RuleSet};

/// A 3SAT literal: variable index (0-based) and polarity.
#[derive(Clone, Copy)]
struct Lit(usize, bool);

/// A clause of three literals over *distinct* variables.
type Clause = [Lit; 3];

/// Build the Theorem 6 gadget for a formula over `m` variables.
///
/// Schemas: `R(X1..Xm, C1..Cn, V)`, `Rm(B1, B2, B3, C, V1, V0)`.
/// Master: the 8 truth assignments of a three-variable block, all with
/// `C = 1, V1 = 1, V0 = 0`.
/// Rules per clause `j`: `ϕj,1` fixes `Cj := C` keyed on the clause's
/// variables; `ϕj,2` fixes `V := V1` (always 1); `ϕj,3` fixes
/// `V := V0` (0) *patterned on the falsifying assignment*. A falsified
/// clause therefore derives both `V = 1` and `V = 0` — a conflict.
fn sat_gadget(m: usize, clauses: &[Clause]) -> (Arc<Schema>, RuleSet, MasterIndex) {
    let mut r_attrs: Vec<String> = (1..=m).map(|i| format!("X{i}")).collect();
    r_attrs.extend((1..=clauses.len()).map(|j| format!("C{j}")));
    r_attrs.push("V".to_string());
    let r = Schema::new("R", r_attrs).unwrap();
    let rm = Schema::new("Rm", ["B1", "B2", "B3", "C", "V1", "V0"]).unwrap();

    let mut master = Relation::empty(rm.clone());
    for bits in 0..8u8 {
        let mut t = Tuple::nulls(6);
        for (i, name) in ["B1", "B2", "B3"].iter().enumerate() {
            t.set(rm.attr(name).unwrap(), Value::int(((bits >> i) & 1) as i64));
        }
        t.set(rm.attr("C").unwrap(), Value::int(1));
        t.set(rm.attr("V1").unwrap(), Value::int(1));
        t.set(rm.attr("V0").unwrap(), Value::int(0));
        master.push(t).unwrap();
    }
    let master = MasterIndex::new(Arc::new(master));

    let mut rules = RuleSet::new(r.clone(), rm.clone());
    let bs = ["B1", "B2", "B3"];
    for (j, clause) in clauses.iter().enumerate() {
        let xs: Vec<String> = clause.iter().map(|l| format!("X{}", l.0 + 1)).collect();
        // ϕj,1: clause variables → Cj
        let mut b = EditingRule::build(&r, &rm).name(format!("phi{}_1", j + 1));
        for (x, bm) in xs.iter().zip(bs) {
            b = b.key(x, bm);
        }
        rules
            .push(b.fix(&format!("C{}", j + 1), "C").finish().unwrap())
            .unwrap();
        // ϕj,2: V := 1 unconditionally
        let mut b = EditingRule::build(&r, &rm).name(format!("phi{}_2", j + 1));
        for (x, bm) in xs.iter().zip(bs) {
            b = b.key(x, bm);
        }
        rules.push(b.fix("V", "V1").finish().unwrap()).unwrap();
        // ϕj,3: V := 0 when the clause is falsified
        let mut b = EditingRule::build(&r, &rm).name(format!("phi{}_3", j + 1));
        for (x, bm) in xs.iter().zip(bs) {
            b = b.key(x, bm);
        }
        for lit in clause {
            // the falsifying value: 0 for a positive literal, 1 for a
            // negated one
            b = b.when_eq(&format!("X{}", lit.0 + 1), i64::from(!lit.1));
        }
        rules.push(b.fix("V", "V0").finish().unwrap()).unwrap();
    }
    (r, rules, master)
}

fn z_of_vars(r: &Schema, m: usize) -> Vec<certain_fix::relation::AttrId> {
    (1..=m).map(|i| r.attr(&format!("X{i}")).unwrap()).collect()
}

#[test]
fn theorem6_satisfiable_formula_validates() {
    // φ = (x1 ∨ x2 ∨ ¬x3) ∧ (¬x1 ∨ x3 ∨ x2): satisfiable.
    let clauses = [
        [Lit(0, true), Lit(1, true), Lit(2, false)],
        [Lit(0, false), Lit(2, true), Lit(1, true)],
    ];
    let (r, rules, master) = sat_gadget(3, &clauses);
    let z = z_of_vars(&r, 3);
    let witness = z_validate(&rules, &master, &z, &ZBudget::default())
        .unwrap()
        .expect("satisfiable formula must admit a certain region");
    // the witness must be a satisfying assignment
    for (j, clause) in clauses.iter().enumerate() {
        let sat = clause.iter().any(|l| {
            let cell = witness
                .cell(r.attr(&format!("X{}", l.0 + 1)).unwrap())
                .unwrap();
            cell.as_const() == Some(&Value::int(i64::from(l.1)))
        });
        assert!(sat, "witness falsifies clause {}", j + 1);
    }
}

#[test]
fn theorem6_unsatisfiable_formula_rejects() {
    // All 8 sign patterns over (x1, x2, x3): unsatisfiable.
    let mut clauses = Vec::new();
    for bits in 0..8u8 {
        clauses.push([
            Lit(0, bits & 1 != 0),
            Lit(1, bits & 2 != 0),
            Lit(2, bits & 4 != 0),
        ]);
    }
    let (r, rules, master) = sat_gadget(3, &clauses);
    let z = z_of_vars(&r, 3);
    assert!(
        z_validate(&rules, &master, &z, &ZBudget::default())
            .unwrap()
            .is_none(),
        "unsatisfiable formula must admit no certain region"
    );
}

#[test]
fn theorem9_counting_is_parsimonious() {
    // Single clause (x1 ∨ x2 ∨ x3): exactly 7 satisfying assignments.
    let clauses = [[Lit(0, true), Lit(1, true), Lit(2, true)]];
    let (r, rules, master) = sat_gadget(3, &clauses);
    let z = z_of_vars(&r, 3);
    assert_eq!(
        z_count(&rules, &master, &z, &ZBudget::default()).unwrap(),
        7
    );
    // (¬x1 ∨ x2 ∨ x3) ∧ (x1 ∨ ¬x2 ∨ x3): 8 − 2·1 + overlap… = 5
    // falsifying assignments of clause 1: x1=1,x2=0,x3=0;
    // of clause 2: x1=0,x2=1,x3=0; disjoint → 8 − 2 = 6 models.
    let clauses = [
        [Lit(0, false), Lit(1, true), Lit(2, true)],
        [Lit(0, true), Lit(1, false), Lit(2, true)],
    ];
    let (r, rules, master) = sat_gadget(3, &clauses);
    let z = z_of_vars(&r, 3);
    assert_eq!(
        z_count(&rules, &master, &z, &ZBudget::default()).unwrap(),
        6
    );
}

/// Build the Theorem 12 gadget for a set-cover instance: elements
/// `0..n`, subsets `sets[j] ⊆ 0..n`.
///
/// `R(C1..Ch, X{i}_{l} for i ∈ 0..n, l ∈ 0..=h)`, `Rm(B1, B2)` with a
/// single master tuple `(1, 1)`. Rules: `Cj → Xi_l` for each `xi ∈ Cj`
/// and each `l`; plus one rule per subset deriving `Cj` from all its
/// elements' attribute blocks (so picking non-`Cj` attributes is
/// hopeless: covering any element without its subset costs `h+1`
/// attributes).
fn cover_gadget(n: usize, sets: &[Vec<usize>]) -> (Arc<Schema>, RuleSet, MasterIndex) {
    let h = sets.len();
    let mut attrs: Vec<String> = (1..=h).map(|j| format!("C{j}")).collect();
    for i in 0..n {
        for l in 0..=h {
            attrs.push(format!("X{i}_{l}"));
        }
    }
    let r = Schema::new("R", attrs).unwrap();
    let rm = Schema::new("Rm", ["B1", "B2"]).unwrap();
    let mut master = Relation::empty(rm.clone());
    master
        .push(Tuple::new(vec![Value::int(1), Value::int(1)]))
        .unwrap();
    let master = MasterIndex::new(Arc::new(master));

    let mut rules = RuleSet::new(r.clone(), rm.clone());
    for (j, set) in sets.iter().enumerate() {
        for &i in set {
            for l in 0..=h {
                rules
                    .push(
                        EditingRule::build(&r, &rm)
                            .name(format!("c{}_x{}_{}", j + 1, i, l))
                            .key(&format!("C{}", j + 1), "B1")
                            .fix(&format!("X{i}_{l}"), "B2")
                            .finish()
                            .unwrap(),
                    )
                    .unwrap();
            }
        }
        // all element blocks of Cj → Cj
        let mut b = EditingRule::build(&r, &rm).name(format!("back{}", j + 1));
        let mut first = true;
        for &i in set {
            for l in 0..=h {
                if first {
                    b = b.key(&format!("X{i}_{l}"), "B1");
                    first = false;
                } else {
                    b = b.key(&format!("X{i}_{l}"), "B1");
                }
            }
        }
        rules
            .push(b.fix(&format!("C{}", j + 1), "B2").finish().unwrap())
            .unwrap();
    }
    (r, rules, master)
}

#[test]
fn theorem12_minimum_recovers_optimal_cover() {
    // U = {0, 1, 2}; S = {C1 = {0,1}, C2 = {1,2}, C3 = {2}}.
    // Optimal cover: {C1, C2} (size 2).
    let sets = vec![vec![0, 1], vec![1, 2], vec![2]];
    let (r, rules, master) = cover_gadget(3, &sets);
    let budget = ZBudget::default();
    let z = z_minimum(&rules, &master, 3, &budget)
        .unwrap()
        .expect("a cover of size ≤ 3 exists");
    assert_eq!(z.len(), 2, "optimal cover has two subsets: {z:?}");
    let names: Vec<&str> = z.iter().map(|&a| r.attr_name(a)).collect();
    assert!(names.contains(&"C1"));
    assert!(names.contains(&"C2"));
    // k = 1 is infeasible
    assert!(z_minimum(&rules, &master, 1, &budget).unwrap().is_none());
}

#[test]
fn theorem12_single_set_cover() {
    // One subset covering everything: minimum is 1.
    let sets = vec![vec![0, 1]];
    let (_r, rules, master) = cover_gadget(2, &sets);
    let z = z_minimum(&rules, &master, 2, &ZBudget::default())
        .unwrap()
        .expect("cover exists");
    assert_eq!(z.len(), 1);
}
