//! End-to-end integration tests: the full monitoring pipeline on both
//! synthetic workloads, asserting the experiment *shapes* of Sect. 6 at
//! small scale (the bench binaries reproduce them at full scale).

use std::sync::Arc;

use certain_fix::cfd::{repair_tuple, rules_to_cfds, IncRepConfig};
use certain_fix::core::{
    evaluate_changes, evaluate_rounds, BatchesSource, DataMonitor, RepairSessionBuilder,
    SimulatedUser, TupleEval, Workload as CoreWorkload,
};
use certain_fix::datagen::{Dataset, Dblp, DirtyConfig, Hosp, Workload};
use certain_fix::reasoning::{comp_cregion_in_mode, gregion_in_mode};
use certain_fix::relation::Value;

fn run_pipeline<W: Workload>(
    w: &W,
    cfg: &DirtyConfig,
    use_bdd: bool,
) -> (Vec<certain_fix::core::FixOutcome>, Dataset) {
    let mut monitor = DataMonitor::new(w.rules().clone(), w.master().clone(), use_bdd);
    let ds = Dataset::generate(w, cfg);
    let outcomes = ds
        .inputs
        .iter()
        .map(|dt| {
            let mut user = SimulatedUser::new(dt.clean.clone());
            monitor.process(&dt.dirty, &mut user)
        })
        .collect();
    (outcomes, ds)
}

#[test]
fn exp1_region_sizes_compc_beats_greedy() {
    // Exp-1(1) shape: CompCRegion's Z is strictly smaller than
    // GRegion's on both workloads (paper: 2 vs 4 and 5 vs 9).
    let hosp = Hosp::generate(50);
    let comp = comp_cregion_in_mode(hosp.rules(), &Vec::new());
    let greedy = gregion_in_mode(hosp.rules(), &Vec::new());
    assert_eq!(comp.len(), 2, "HOSP CompCRegion |Z| = 2 as in the paper");
    assert_eq!(greedy.len(), 4, "HOSP GRegion |Z| = 4 as in the paper");

    let dblp = Dblp::generate(50);
    let mode = vec![(
        dblp.schema().attr("type").unwrap(),
        Value::str("inproceedings"),
    )];
    let comp = comp_cregion_in_mode(dblp.rules(), &mode);
    let greedy = gregion_in_mode(dblp.rules(), &mode);
    assert_eq!(comp.len(), 5, "DBLP CompCRegion |Z| = 5 as in the paper");
    assert!(comp.len() < greedy.len(), "CompCRegion strictly smaller");
}

#[test]
fn fig9_shape_recall_saturates_within_few_rounds() {
    let hosp = Hosp::generate(400);
    let cfg = DirtyConfig {
        duplicate_rate: 0.3,
        noise_rate: 0.2,
        input_size: 150,
        seed: 9,
        ..Default::default()
    };
    let (outcomes, ds) = run_pipeline(&hosp, &cfg, true);
    let evals: Vec<TupleEval> = outcomes
        .iter()
        .zip(&ds.inputs)
        .map(|(o, dt)| TupleEval {
            outcome: o,
            dirty: &dt.dirty,
            clean: &dt.clean,
        })
        .collect();
    let metrics = evaluate_rounds(&evals, 4);
    // recall is non-decreasing and saturates
    for w in metrics.windows(2) {
        assert!(w[1].recall_t >= w[0].recall_t);
    }
    // master-backed tuples are all fixed within the observed rounds
    let max_rounds = outcomes.iter().map(|o| o.rounds.len()).max().unwrap();
    assert!(max_rounds <= 4, "few rounds of interaction: {max_rounds}");
    // precision is 1.0 at every round
    for m in &metrics {
        assert_eq!(m.precision_a, 1.0);
    }
}

#[test]
fn fig10_shape_recall_tracks_duplicate_rate_not_noise() {
    let dblp = Dblp::generate(400);
    let mut at_d: Vec<f64> = Vec::new();
    for d in [0.1, 0.3, 0.5] {
        let cfg = DirtyConfig {
            duplicate_rate: d,
            noise_rate: 0.2,
            input_size: 200,
            seed: 10,
            ..Default::default()
        };
        let (outcomes, ds) = run_pipeline(&dblp, &cfg, true);
        let evals: Vec<TupleEval> = outcomes
            .iter()
            .zip(&ds.inputs)
            .map(|(o, dt)| TupleEval {
                outcome: o,
                dirty: &dt.dirty,
                clean: &dt.clean,
            })
            .collect();
        at_d.push(evaluate_rounds(&evals, 1)[0].recall_t);
    }
    assert!(
        at_d[0] < at_d[1] && at_d[1] < at_d[2],
        "recall grows with d%: {at_d:?}"
    );
    // recall_t(1) ≈ d%
    assert!((at_d[1] - 0.3).abs() < 0.1, "recall_t(1) ≈ d%: {}", at_d[1]);

    // noise insensitivity
    let mut at_n: Vec<f64> = Vec::new();
    for n in [0.1, 0.4] {
        let cfg = DirtyConfig {
            duplicate_rate: 0.3,
            noise_rate: n,
            input_size: 200,
            seed: 11,
            ..Default::default()
        };
        let (outcomes, ds) = run_pipeline(&dblp, &cfg, true);
        let evals: Vec<TupleEval> = outcomes
            .iter()
            .zip(&ds.inputs)
            .map(|(o, dt)| TupleEval {
                outcome: o,
                dirty: &dt.dirty,
                clean: &dt.clean,
            })
            .collect();
        at_n.push(evaluate_rounds(&evals, 1)[0].recall_t);
    }
    assert!(
        (at_n[0] - at_n[1]).abs() < 0.15,
        "recall_t insensitive to n%: {at_n:?}"
    );
}

#[test]
fn fig11_shape_increp_degrades_with_noise_ours_does_not() {
    let hosp = Hosp::generate(400);
    let mut ours = Vec::new();
    let mut theirs = Vec::new();
    for n in [0.1, 0.5] {
        let cfg = DirtyConfig {
            duplicate_rate: 0.3,
            noise_rate: n,
            input_size: 150,
            seed: 12,
            ..Default::default()
        };
        let (outcomes, ds) = run_pipeline(&hosp, &cfg, true);
        let evals: Vec<TupleEval> = outcomes
            .iter()
            .zip(&ds.inputs)
            .map(|(o, dt)| TupleEval {
                outcome: o,
                dirty: &dt.dirty,
                clean: &dt.clean,
            })
            .collect();
        ours.push(evaluate_rounds(&evals, 1)[0].f_measure);

        let (cfds, _) = rules_to_cfds(hosp.rules());
        let inc_cfg = IncRepConfig::default();
        let repaired: Vec<_> = ds
            .inputs
            .iter()
            .map(|dt| repair_tuple(&cfds, &dt.dirty, hosp.master_index(), &inc_cfg).tuple)
            .collect();
        let counts = evaluate_changes(
            ds.inputs
                .iter()
                .zip(&repaired)
                .map(|(dt, t)| (&dt.dirty, t, &dt.clean)),
        );
        theirs.push(counts.f_measure());
    }
    // IncRep degrades with noise; we stay comparable
    assert!(
        theirs[1] < theirs[0],
        "IncRep F-measure must degrade with noise: {theirs:?}"
    );
    assert!(
        (ours[0] - ours[1]).abs() < 0.15,
        "our F-measure is noise-insensitive: {ours:?}"
    );
    // and at high noise we are clearly ahead
    assert!(ours[1] > theirs[1]);
}

#[test]
fn certain_fixes_never_touch_an_attribute_wrongly() {
    // The titular guarantee, end to end, on both workloads.
    for (outcomes, ds) in [
        run_pipeline(
            &Hosp::generate(300),
            &DirtyConfig {
                duplicate_rate: 0.5,
                noise_rate: 0.3,
                input_size: 120,
                seed: 13,
                ..Default::default()
            },
            true,
        ),
        run_pipeline(
            &Dblp::generate(300),
            &DirtyConfig {
                duplicate_rate: 0.5,
                noise_rate: 0.3,
                input_size: 120,
                seed: 14,
                ..Default::default()
            },
            false,
        ),
    ] {
        for (o, dt) in outcomes.iter().zip(&ds.inputs) {
            for a in o.rule_fixed.iter() {
                assert_eq!(
                    o.tuple.get(a),
                    dt.clean.get(a),
                    "a rule-fixed attribute differs from ground truth"
                );
            }
            if o.certain {
                assert_eq!(&o.tuple, &dt.clean, "certain fixes equal the truth");
            }
        }
    }
}

#[test]
fn bdd_and_plain_agree_on_a_mixed_stream() {
    let dblp = Dblp::generate(250);
    let cfg = DirtyConfig {
        duplicate_rate: 0.4,
        noise_rate: 0.25,
        input_size: 100,
        seed: 15,
        ..Default::default()
    };
    let (plain, _) = run_pipeline(&dblp, &cfg, false);
    let (cached, _) = run_pipeline(&dblp, &cfg, true);
    for (a, b) in plain.iter().zip(&cached) {
        assert_eq!(a.tuple, b.tuple);
        assert_eq!(a.certain, b.certain);
        assert_eq!(a.rule_fixed, b.rule_fixed);
    }
}

#[test]
fn increp_works_through_the_facade() {
    // Smoke-check the full CFD path through the `certain_fix` facade:
    // with the standalone entry point retired, the IncRep baseline is
    // a `Workload` on the same session surface as editing-rule repair.
    let hosp = Hosp::generate(100);
    let ds = Dataset::generate(
        &hosp,
        &DirtyConfig {
            duplicate_rate: 1.0,
            noise_rate: 0.1,
            input_size: 40,
            seed: 16,
            ..Default::default()
        },
    );
    let (cfds, skipped) = rules_to_cfds(hosp.rules());
    assert_eq!(skipped, 0, "HOSP rules align by name");
    assert_eq!(cfds.len(), 21);
    let dirty: Vec<_> = ds.inputs.iter().map(|dt| dt.dirty.clone()).collect();
    let mut session = RepairSessionBuilder::new(hosp.rules().clone(), hosp.master().clone())
        .workload(CoreWorkload::Cfd(IncRepConfig::default()))
        .threads(2)
        .shared_cache(false)
        .build();
    session.push_batch(&dirty, |i| SimulatedUser::new(ds.inputs[i].clean.clone()));
    let report = session.finish();
    let counts = evaluate_changes(
        ds.inputs
            .iter()
            .zip(report.outcomes())
            .map(|(dt, o)| (&dt.dirty, &o.tuple, &dt.clean)),
    );
    assert!(counts.changed > 0, "IncRep repairs something");
    assert!(counts.recall() > 0.0);
    let _ = Arc::strong_count(hosp.master());
}

#[test]
fn session_over_generator_batches_matches_the_sequential_monitor() {
    // The facade-level session walkthrough: drain the dirty-data
    // generator's decorrelated batch stream through a parallel
    // RepairSession (via BatchesSource) and check it agrees with the
    // sequential DataMonitor fed the identical stream — plain
    // CertainFix, caches off, so agreement is bit-exact by the
    // session's determinism contract.
    let hosp = Hosp::generate(200);
    let cfg = DirtyConfig {
        duplicate_rate: 0.4,
        noise_rate: 0.2,
        input_size: 120,
        seed: 77,
        ..Default::default()
    };
    // materialize the same stream the source will yield (batch
    // generation is deterministic and independently regenerable)
    let inputs: Vec<_> = Dataset::batches(&hosp, &cfg, 50)
        .flat_map(|ds| ds.inputs)
        .collect();

    let mut session = RepairSessionBuilder::new(hosp.rules().clone(), hosp.master().clone())
        .threads(2)
        .shared_cache(false)
        .build();
    let drained = session.drain(BatchesSource::new(Dataset::batches(&hosp, &cfg, 50)), |i| {
        SimulatedUser::new(inputs[i].clean.clone())
    });
    assert_eq!(drained, 120);
    let report = session.finish();
    assert_eq!(report.batches.len(), 3, "120 tuples in batches of 50");

    let mut monitor = DataMonitor::new(hosp.rules().clone(), hosp.master().clone(), false);
    for (i, (out, dt)) in report.outcomes().zip(&inputs).enumerate() {
        let mut user = SimulatedUser::new(dt.clean.clone());
        let seq = monitor.process(&dt.dirty, &mut user);
        assert_eq!(out.tuple, seq.tuple, "tuple {i}");
        assert_eq!(out.certain, seq.certain, "tuple {i}");
        assert_eq!(out.rounds.len(), seq.rounds.len(), "tuple {i}");
    }
    assert_eq!(report.stats.tuples, monitor.stats().tuples);
    assert_eq!(report.stats.certain, monitor.stats().certain);
    assert_eq!(report.stats.rounds, monitor.stats().rounds);
}
