//! The paper's running example (Fig. 1 and Examples 1–14), executed end
//! to end through the `certain_fix` facade. Each test corresponds to a
//! numbered example of the paper; together they walk its whole
//! narrative on the exact data of Fig. 1.

use std::sync::Arc;

use certain_fix::cfd::{repair_tuple, Cfd, IncRepConfig};
use certain_fix::core::{evaluate_changes, DataMonitor, SimulatedUser};
use certain_fix::prelude::*;
use certain_fix::reasoning::{applicable_rules, check_coverage, suggest};
use certain_fix::relation::tuple;

fn supplier_schema() -> Arc<Schema> {
    Schema::new(
        "R",
        [
            "fn", "ln", "AC", "phn", "type", "str", "city", "zip", "item",
        ],
    )
    .unwrap()
}

fn master_schema() -> Arc<Schema> {
    Schema::new(
        "Rm",
        [
            "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender",
        ],
    )
    .unwrap()
}

/// Σ0 of Example 11 (ϕ1–ϕ9 as three DSL families + ϕ9).
fn sigma0(r: &Arc<Schema>, rm: &Arc<Schema>) -> RuleSet {
    certain_fix::rules::parse_rules(
        r#"
        phi1: match zip ~ zip set AC := AC, str := str, city := city
        phi2: match phn ~ Mphn set fn := FN, ln := LN when type = 2
        phi3: match AC ~ AC, phn ~ Hphn set str := str, city := city, zip := zip when type = 1, AC != '0800'
        phi4: match AC ~ AC set city := city when AC = '0800'
        "#,
        r,
        rm,
    )
    .unwrap()
}

/// Dm of Fig. 1b (s1, s2).
fn master(rm: &Arc<Schema>) -> Arc<Relation> {
    Arc::new(
        Relation::new(
            rm.clone(),
            vec![
                tuple![
                    "Robert",
                    "Brady",
                    "131",
                    "6884563",
                    "079172485",
                    "51 Elm Row",
                    "Edi",
                    "EH7 4AH",
                    "11/11/55",
                    "M"
                ],
                tuple![
                    "Mark",
                    "Smith",
                    "020",
                    "6884563",
                    "075568485",
                    "20 Baker St.",
                    "Lnd",
                    "NW1 6XE",
                    "25/12/67",
                    "M"
                ],
            ],
        )
        .unwrap(),
    )
}

/// t1 of Fig. 1a and its ground truth.
fn t1() -> (Tuple, Tuple) {
    (
        tuple![
            "Bob",
            "Brady",
            "020",
            "079172485",
            2,
            "501 Elm St.",
            "Edi",
            "EH7 4AH",
            "CD"
        ],
        tuple![
            "Robert",
            "Brady",
            "131",
            "079172485",
            2,
            "51 Elm Row",
            "Edi",
            "EH7 4AH",
            "CD"
        ],
    )
}

#[test]
fn example1_cfds_detect_but_heuristics_may_corrupt() {
    // The CFD "AC = 020 → city = Ldn" flags t1 as inconsistent but a
    // cost-based repair may change the CORRECT city instead of AC.
    let r = supplier_schema();
    let (dirty, truth) = t1();
    let cfd = Cfd::new(
        "uk",
        vec![r.attr("AC").unwrap()],
        vec![Some(Value::str("020"))],
        r.attr("city").unwrap(),
        Some(Value::str("Ldn")),
    );
    assert!(cfd.violates_single(&dirty), "the CFD detects the error");
    // repair it with IncRep against a reference holding only s1's row
    // mapped to R (the "rest of the database")
    let reference = MasterIndex::new(Arc::new(
        Relation::new(r.clone(), vec![truth.clone()]).unwrap(),
    ));
    let repair = repair_tuple(&[cfd], &dirty, &reference, &IncRepConfig::default());
    let counts = evaluate_changes([(&dirty, &repair.tuple, &truth)]);
    // whatever it chose, it did NOT reach the certain fix
    assert_ne!(repair.tuple, truth);
    assert!(counts.precision() < 1.0 || counts.recall() < 1.0);
}

#[test]
fn examples_2_to_4_rules_fix_t1_from_s1() {
    let (r, rm) = (supplier_schema(), master_schema());
    let rules = sigma0(&r, &rm);
    let dm = MasterIndex::new(master(&rm));
    let (dirty, _) = t1();
    // ϕ1 (zip key) applies with s1 and corrects AC
    let phi1 = rules.by_name("phi1.AC").unwrap();
    let fixed = certain_fix::rules::apply(phi1, &dirty, dm.tuple(0)).expect("applies");
    assert_eq!(fixed.get(r.attr("AC").unwrap()), &Value::str("131"));
    // ϕ2 (mobile) standardizes Bob → Robert
    let phi2 = rules.by_name("phi2.fn").unwrap();
    let fixed = certain_fix::rules::apply(phi2, &dirty, dm.tuple(0)).expect("applies");
    assert_eq!(fixed.get(r.attr("fn").unwrap()), &Value::str("Robert"));
}

#[test]
fn example9_certain_region_and_full_fix() {
    // (Z_zmi, T_zmi) is a certain region; processing t1 against it
    // yields the complete certain fix.
    let (r, rm) = (supplier_schema(), master_schema());
    let rules = sigma0(&r, &rm);
    let dm = MasterIndex::new(master(&rm));
    let z: Vec<AttrId> = ["zip", "phn", "type", "item"]
        .iter()
        .map(|n| r.attr(n).unwrap())
        .collect();
    let rows: Vec<PatternTuple> = master(&rm)
        .iter()
        .map(|s| {
            PatternTuple::new(vec![
                (
                    r.attr("zip").unwrap(),
                    PatternValue::Const(*s.get(rm.attr("zip").unwrap())),
                ),
                (
                    r.attr("phn").unwrap(),
                    PatternValue::Const(*s.get(rm.attr("Mphn").unwrap())),
                ),
                (r.attr("type").unwrap(), PatternValue::Const(Value::int(2))),
            ])
        })
        .collect();
    let region = Region::new(z, Tableau::new(rows)).unwrap();
    let report = check_coverage(&rules, &dm, &region, 100_000).unwrap();
    assert!(report.certain, "Example 9's region is certain");
}

#[test]
fn examples_12_to_14_interactive_fix_via_zip_only() {
    // Start from Z = {zip} (Example 12's TransFix run), then Example
    // 13's suggestion {phn, type, item}, then completion.
    let (r, rm) = (supplier_schema(), master_schema());
    let rules = sigma0(&r, &rm);
    let dm = MasterIndex::new(master(&rm));
    let (dirty, truth) = t1();

    // Example 12: TransFix from {zip} fixes AC, str, city
    let graph = DependencyGraph::new(&rules);
    let out = certain_fix::core::transfix(
        &rules,
        &dm,
        &graph,
        &dirty,
        AttrSet::singleton(r.attr("zip").unwrap()),
    );
    assert_eq!(out.fixed.len(), 3);

    // Example 14: the applicable rules include the refined ϕ3 family
    let refined = applicable_rules(&rules, &dm, &out.tuple, out.validated);
    assert!(refined.iter().any(|rule| rule.name() == "phi3.zip"));

    // Example 13: the suggestion is {phn, type, item}
    let sug = suggest(&rules, &dm, &out.tuple, out.validated).unwrap();
    let names: Vec<&str> = sug.attrs.iter().map(|&a| r.attr_name(a)).collect();
    assert_eq!(names, vec!["phn", "type", "item"]);

    // Completion: the full monitor reaches the certain fix in 2 rounds.
    let mut monitor = DataMonitor::new(rules, master(&rm), true);
    let mut user = SimulatedUser::new(truth.clone());
    let outcome = monitor.process(&dirty, &mut user);
    assert!(outcome.certain);
    assert_eq!(outcome.tuple, truth);
}
