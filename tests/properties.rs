//! Property-based tests (proptest) on the cross-crate invariants.
//!
//! Random miniature workloads — small integer domains so key collisions
//! and conflicts actually occur — exercise:
//!
//! * chase soundness (validated grows, `Z` protected, determinism),
//! * confluence: when the chase reports a unique fix, any sequential
//!   application order converges to it (the definition of uniqueness in
//!   Sect. 3),
//! * `TransFix` ≡ chase on unique instances,
//! * `CertainFix+` (BDD) ≡ `CertainFix` fix-for-fix,
//! * the compiled [`RulePlan`] probe layer ≡ the legacy `MasterIndex`
//!   path (candidates, distinct fix values, chase, `TransFix`, and
//!   whole `CertainFix` outcomes — including null-key and
//!   pattern-mismatch edges),
//! * session-interleaving-independence: N randomly sized streams
//!   multiplexed through a `RepairService` ≡ each stream drained alone,
//! * live master data (D10): random insert/update/delete
//!   [`MasterDelta`] sequences interleaved with probe batches ≡
//!   engines rebuilt from scratch over each pinned master state,
//! * metrics bounds and pattern algebra laws.

use std::sync::Arc;

use proptest::prelude::*;

use certain_fix::core::{
    evaluate_changes, transfix, transfix_block, transfix_with, BatchRepairEngine, CertainFix,
    CertainFixConfig, MonitorStats, RepairContext, RepairOptions, RepairServiceBuilder,
    RepairSessionBuilder, ServiceStream, SimulatedUser, SliceSource,
};
use certain_fix::reasoning::{suggest, suggest_with, Chase, ChaseResult};
use certain_fix::relation::{
    AttrId, AttrSet, MasterDelta, MasterIndex, PatternTuple, PatternValue, Relation, Schema, Tuple,
    Value,
};
use certain_fix::rules::{
    candidate_masters, distinct_fix_values, DependencyGraph, EditingRule, ProbeScratch, RulePlan,
    RuleSet,
};

const ATTRS: usize = 5;

fn schema() -> Arc<Schema> {
    Schema::new("R", ["a", "b", "c", "d", "e"]).unwrap()
}

/// A tuple of small integers (collision-rich domain).
fn arb_tuple() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(0i64..4, ATTRS)
        .prop_map(|vs| Tuple::new(vs.into_iter().map(Value::int).collect()))
}

/// A master relation of 1–8 such rows.
fn arb_master() -> impl Strategy<Value = Vec<Tuple>> {
    proptest::collection::vec(arb_tuple(), 1..8)
}

/// A random single- or double-key rule with an optional pattern.
#[allow(clippy::type_complexity)]
fn arb_rule(idx: usize) -> impl Strategy<Value = (usize, Vec<usize>, usize, Option<(usize, i64)>)> {
    (
        proptest::collection::vec(0..ATTRS, 1..3),
        0..ATTRS,
        proptest::option::of((0..ATTRS, 0i64..4)),
    )
        .prop_map(move |(lhs, rhs, pat)| (idx, lhs, rhs, pat))
}

#[allow(clippy::type_complexity)]
fn build_rules(
    specs: Vec<(usize, Vec<usize>, usize, Option<(usize, i64)>)>,
) -> Option<(RuleSet, DependencyGraph)> {
    let s = schema();
    let mut rules = RuleSet::new(s.clone(), s.clone());
    for (idx, lhs, rhs, pat) in specs {
        let mut lhs: Vec<usize> = lhs;
        lhs.sort_unstable();
        lhs.dedup();
        if lhs.contains(&rhs) {
            continue;
        }
        let names: Vec<String> = (0..ATTRS)
            .map(|i| s.attr_name(AttrId(i as u16)).to_string())
            .collect();
        let mut b = EditingRule::build(&s, &s).name(format!("r{idx}"));
        for &x in &lhs {
            b = b.key(&names[x], &names[x]);
        }
        b = b.fix(&names[rhs], &names[rhs]);
        if let Some((pa, pv)) = pat {
            b = b.when_eq(&names[pa], pv);
        }
        match b.finish() {
            Ok(rule) => rules.push(rule).ok()?,
            Err(_) => continue,
        }
    }
    if rules.is_empty() {
        return None;
    }
    let graph = DependencyGraph::new(&rules);
    Some((rules, graph))
}

#[allow(clippy::type_complexity)]
fn arb_workload() -> impl Strategy<
    Value = (
        Vec<Tuple>,
        Vec<(usize, Vec<usize>, usize, Option<(usize, i64)>)>,
        Tuple,
        u8,
    ),
> {
    (
        arb_master(),
        proptest::collection::vec(any::<u8>(), 1..6).prop_flat_map(|seeds| {
            seeds
                .into_iter()
                .enumerate()
                .map(|(i, _)| arb_rule(i))
                .collect::<Vec<_>>()
        }),
        arb_tuple(),
        any::<u8>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn chase_soundness((master_rows, specs, t, zbits) in arb_workload()) {
        let Some((rules, _)) = build_rules(specs) else { return Ok(()); };
        let s = schema();
        let master = MasterIndex::new(Arc::new(
            Relation::new(s.clone(), master_rows).unwrap(),
        ));
        let initial = AttrSet::from_bits(u64::from(zbits) & ((1 << ATTRS) - 1));
        let chase = Chase::new(&rules, &master);
        match chase.run(&t, initial) {
            ChaseResult::Fixed(fix) => {
                // validated grows monotonically and includes Zb
                prop_assert!(initial.is_subset(&fix.validated));
                // protected: Zb cells unchanged
                for a in initial.iter() {
                    prop_assert_eq!(fix.tuple.get(a), t.get(a));
                }
                // non-validated cells unchanged too (rules only write
                // attributes they validate)
                for a in (AttrSet::full(ATTRS) - fix.validated).iter() {
                    prop_assert_eq!(fix.tuple.get(a), t.get(a));
                }
                // deterministic
                let again = chase.run(&t, initial);
                prop_assert_eq!(again.fix().unwrap().tuple.clone(), fix.tuple.clone());
            }
            ChaseResult::Conflict(c) => {
                // conflicts carry genuinely different values
                prop_assert_ne!(c.values.0.clone(), c.values.1.clone());
            }
        }
    }

    #[test]
    fn chase_confluence((master_rows, specs, t, zbits) in arb_workload(), order_seed in any::<u64>()) {
        let Some((rules, _)) = build_rules(specs) else { return Ok(()); };
        let s = schema();
        let master = MasterIndex::new(Arc::new(
            Relation::new(s.clone(), master_rows).unwrap(),
        ));
        let initial = AttrSet::from_bits(u64::from(zbits) & ((1 << ATTRS) - 1));
        let chase = Chase::new(&rules, &master);
        if let ChaseResult::Fixed(fix) = chase.run(&t, initial) {
            let mut state = order_seed | 1;
            let (tuple, validated) = chase.run_sequential(&t, initial, |frontier| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize % frontier.len()
            });
            prop_assert_eq!(tuple, fix.tuple);
            prop_assert_eq!(validated, fix.validated);
        }
    }

    #[test]
    fn transfix_matches_chase_on_unique_instances(
        (master_rows, specs, t, zbits) in arb_workload()
    ) {
        let Some((rules, graph)) = build_rules(specs) else { return Ok(()); };
        let s = schema();
        let master = MasterIndex::new(Arc::new(
            Relation::new(s.clone(), master_rows).unwrap(),
        ));
        let initial = AttrSet::from_bits(u64::from(zbits) & ((1 << ATTRS) - 1));
        let chase = Chase::new(&rules, &master);
        if let ChaseResult::Fixed(fix) = chase.run(&t, initial) {
            let out = transfix(&rules, &master, &graph, &t, initial);
            if out.disputed.is_empty() {
                prop_assert_eq!(out.tuple, fix.tuple);
                prop_assert_eq!(out.validated, fix.validated);
            }
        }
    }

    /// The tentpole's determinism contract, randomized: on arbitrary
    /// miniature workloads the compiled plan and the legacy probe path
    /// agree on candidate masters, distinct fix values, chase results,
    /// `TransFix`, and complete `CertainFix` outcomes — including
    /// null-key and pattern-mismatch edges.
    #[test]
    fn compiled_plan_matches_legacy_probes(
        (master_rows, specs, t, zbits) in arb_workload(),
        null_at in 0..ATTRS,
    ) {
        let Some((rules, graph)) = build_rules(specs) else { return Ok(()); };
        let s = schema();
        let master = MasterIndex::new(Arc::new(
            Relation::new(s.clone(), master_rows.clone()).unwrap(),
        ));
        let plan = RulePlan::compile(&rules, &master);
        let mut scratch = ProbeScratch::new();
        // a null-key variant of t exercises the null edge explicitly
        let mut t_null = t.clone();
        t_null.set(AttrId(null_at as u16), Value::Null);
        let mut vals = Vec::new();
        for probe_t in [&t, &t_null] {
            for (i, rule) in rules.iter() {
                let legacy = candidate_masters(rule, probe_t, &master);
                prop_assert_eq!(plan.candidates(i, probe_t, &mut scratch), &legacy[..]);
                plan.distinct_fix_values_into(i, probe_t, &mut scratch, &mut vals);
                prop_assert_eq!(&vals, &distinct_fix_values(rule, probe_t, &master));
            }
        }
        let initial = AttrSet::from_bits(u64::from(zbits) & ((1 << ATTRS) - 1));
        // chase parity (result kind and content)
        let legacy_chase = Chase::new(&rules, &master);
        let plan_chase = Chase::new(&rules, &master).with_plan(Some(&plan));
        match (legacy_chase.run(&t, initial), plan_chase.run(&t, initial)) {
            (ChaseResult::Fixed(a), ChaseResult::Fixed(b)) => {
                prop_assert_eq!(a.tuple, b.tuple);
                prop_assert_eq!(a.validated, b.validated);
                prop_assert_eq!(a.steps, b.steps);
            }
            (ChaseResult::Conflict(a), ChaseResult::Conflict(b)) => {
                prop_assert_eq!(a, b);
            }
            _ => prop_assert!(false, "chase result kind diverged"),
        }
        // TransFix parity
        let a = transfix(&rules, &master, &graph, &t, initial);
        let b = transfix_with(&rules, &master, &graph, &plan, &mut scratch, &t, initial);
        prop_assert_eq!(a.tuple, b.tuple);
        prop_assert_eq!(a.validated, b.validated);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.disputed, b.disputed);
        // whole-outcome parity: the full interaction loop with a
        // simulated user whose ground truth is the first master row
        let clean = master_rows[0].clone();
        let initial_suggestion: Vec<AttrId> = initial.iter().collect();
        let legacy_fix = CertainFix::new(&rules, &master, &graph, &plan, CertainFixConfig::default());
        let plan_fix = CertainFix::new(&rules, &master, &graph, &plan, CertainFixConfig::default());
        let mut u1 = SimulatedUser::new(clean.clone());
        let out1 = legacy_fix.run(&t, &initial_suggestion, &mut u1, |tt, v, _| {
            suggest(&rules, &master, tt, v).map(|sg| sg.attrs)
        });
        let mut u2 = SimulatedUser::new(clean);
        let out2 = plan_fix.run_scratch(
            &t,
            &initial_suggestion,
            &mut u2,
            |tt, v, sc| suggest_with(&rules, &master, tt, v, &plan, sc).map(|sg| sg.attrs),
            &mut scratch,
        );
        prop_assert_eq!(out1.tuple, out2.tuple);
        prop_assert_eq!(out1.validated, out2.validated);
        prop_assert_eq!(out1.rule_fixed, out2.rule_fixed);
        prop_assert_eq!(out1.certain, out2.certain);
        prop_assert_eq!(out1.rounds.len(), out2.rounds.len());
    }

    /// The block-probe determinism contract, randomized: chunking an
    /// arbitrary miniature batch through `transfix_block` at block
    /// sizes 1, 2, 7 and 64 yields the same outcomes — and the same
    /// logical probe count — as the single-tuple walk, including
    /// null-key edges (a random cell nulled per tuple) and
    /// pattern-mismatch edges (random `when` cells rarely match the
    /// collision-rich domain).
    #[test]
    fn block_probing_matches_single_tuple_at_every_block_size(
        (master_rows, specs, _, zbits) in arb_workload(),
        batch in proptest::collection::vec(
            (arb_tuple(), proptest::option::of(0..ATTRS), any::<u8>()), 1..12),
    ) {
        let Some((rules, graph)) = build_rules(specs) else { return Ok(()); };
        let s = schema();
        let master = MasterIndex::new(Arc::new(
            Relation::new(s.clone(), master_rows).unwrap(),
        ));
        let plan = RulePlan::compile(&rules, &master);
        let items: Vec<(Tuple, AttrSet)> = batch
            .into_iter()
            .map(|(mut t, null_at, z)| {
                if let Some(a) = null_at {
                    t.set(AttrId(a as u16), Value::Null);
                }
                let bits = (u64::from(z) ^ u64::from(zbits)) & ((1 << ATTRS) - 1);
                (t, AttrSet::from_bits(bits))
            })
            .collect();
        let mut single_scratch = ProbeScratch::new();
        let singles: Vec<_> = items
            .iter()
            .map(|(t, z)| {
                transfix_with(&rules, &master, &graph, &plan, &mut single_scratch, t, *z)
            })
            .collect();
        let (want_probes, _, _) = single_scratch.take_counters();
        for size in [1usize, 2, 7, 64] {
            let mut scratch = ProbeScratch::new();
            let mut got = Vec::with_capacity(items.len());
            for chunk in items.chunks(size) {
                let refs: Vec<(&Tuple, AttrSet)> =
                    chunk.iter().map(|(t, z)| (t, *z)).collect();
                got.extend(transfix_block(
                    &rules, &master, &graph, &plan, &mut scratch, &refs,
                ));
            }
            let (probes, _, _) = scratch.take_counters();
            prop_assert!(
                probes == want_probes,
                "probe count diverged at block size {size}: {probes} != {want_probes}"
            );
            for (a, b) in singles.iter().zip(&got) {
                prop_assert_eq!(&a.tuple, &b.tuple);
                prop_assert_eq!(a.validated, b.validated);
                prop_assert_eq!(a.fixed, b.fixed);
                prop_assert_eq!(&a.steps, &b.steps);
                prop_assert_eq!(&a.disputed, &b.disputed);
            }
        }
    }

    #[test]
    fn metrics_are_bounded(
        dirty in arb_tuple(),
        repaired in arb_tuple(),
        clean in arb_tuple(),
    ) {
        let counts = evaluate_changes([(&dirty, &repaired, &clean)]);
        prop_assert!(counts.corrected <= counts.changed);
        prop_assert!(counts.corrected <= counts.erroneous);
        let r = counts.recall();
        let p = counts.precision();
        let f = counts.f_measure();
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(f <= r.max(p) + 1e-12);
    }

    #[test]
    fn pattern_normalization_preserves_matching(
        cells in proptest::collection::vec(
            (0..ATTRS, 0i64..4, 0..3usize), 0..4),
        t in arb_tuple(),
    ) {
        let pairs: Vec<(AttrId, PatternValue)> = cells
            .into_iter()
            .map(|(a, v, kind)| {
                let cell = match kind {
                    0 => PatternValue::Wildcard,
                    1 => PatternValue::Const(Value::int(v)),
                    _ => PatternValue::Neq(Value::int(v)),
                };
                (AttrId(a as u16), cell)
            })
            .collect();
        let tp = PatternTuple::empty().refined_with(&pairs);
        let normalized = tp.normalize();
        prop_assert_eq!(tp.matches(&t), normalized.matches(&t));
        prop_assert!(normalized.is_normalized());
    }

    #[test]
    fn pattern_subsumption_is_sound(
        a_cell in (0i64..3, 0..3usize),
        b_cell in (0i64..3, 0..3usize),
        v in 0i64..4,
    ) {
        fn mk((c, kind): (i64, usize)) -> PatternValue {
            match kind {
                0 => PatternValue::Wildcard,
                1 => PatternValue::Const(Value::int(c)),
                _ => PatternValue::Neq(Value::int(c)),
            }
        }
        let (pa, pb) = (mk(a_cell), mk(b_cell));
        if pa.subsumed_by(&pb) {
            let val = Value::int(v);
            if pa.matches(&val) {
                prop_assert!(pb.matches(&val), "{pa:?} ⊑ {pb:?} but {val:?} separates them");
            }
        }
    }

    #[test]
    fn value_semantics_survive_interning(
        a_spec in (0..3usize, 0i64..6, 0u8..8),
        b_spec in (0..3usize, 0i64..6, 0u8..8),
    ) {
        // Build values through the interned representation and check
        // that the observable semantics match the seed's Arc<str>
        // representation: equality/ordering follow the *text*, hashing
        // is consistent with equality, and nulls never agree.
        fn mk((kind, n, s): (usize, i64, u8)) -> (Value, Option<String>) {
            match kind {
                0 => (Value::Null, None),
                1 => (Value::int(n), None),
                _ => {
                    let text = format!("v{s}");
                    (Value::str(&text), Some(text))
                }
            }
        }
        let ((va, ta), (vb, tb)) = (mk(a_spec), mk(b_spec));
        // string-backed values compare exactly as their text does
        if let (Some(ta), Some(tb)) = (&ta, &tb) {
            prop_assert_eq!(va == vb, ta == tb);
            prop_assert_eq!(va.cmp(&vb), ta.cmp(tb));
            prop_assert_eq!(va.as_str().unwrap(), ta.as_str());
        }
        // total order ranks Null < Int < Str, ints numerically
        match (&va, &vb) {
            (Value::Null, Value::Int(_) | Value::Str(_)) => {
                prop_assert!(va < vb);
            }
            (Value::Int(_), Value::Str(_)) => prop_assert!(va < vb),
            (Value::Int(x), Value::Int(y)) => {
                prop_assert_eq!(va.cmp(&vb), x.cmp(y));
            }
            _ => {}
        }
        // agreement requires both sides non-null and equal
        prop_assert_eq!(
            va.agrees_with(&vb),
            !va.is_null() && !vb.is_null() && va == vb
        );
        prop_assert!(!Value::Null.agrees_with(&va));
        prop_assert!(!va.agrees_with(&Value::Null));
        // hashing is consistent with equality (required by the index)
        use certain_fix::relation::FxBuildHasher;
        use std::hash::BuildHasher;
        let h = FxBuildHasher::default();
        if va == vb {
            prop_assert_eq!(h.hash_one(va), h.hash_one(vb));
        }
        // interning round-trips and deduplicates
        if let Some(ta) = &ta {
            prop_assert_eq!(va, Value::str(ta));
            prop_assert_eq!(va.as_sym(), Value::str(ta).as_sym());
        }
    }

    #[test]
    fn attrset_behaves_like_a_set(
        xs in proptest::collection::vec(0u16..64, 0..20),
        ys in proptest::collection::vec(0u16..64, 0..20),
    ) {
        use std::collections::BTreeSet;
        let sa: AttrSet = xs.iter().map(|&i| AttrId(i)).collect();
        let sb: AttrSet = ys.iter().map(|&i| AttrId(i)).collect();
        let ma: BTreeSet<u16> = xs.into_iter().collect();
        let mb: BTreeSet<u16> = ys.into_iter().collect();
        let as_model = |s: AttrSet| -> BTreeSet<u16> { s.iter().map(|a| a.0).collect() };
        prop_assert_eq!(as_model(sa | sb), &ma | &mb);
        prop_assert_eq!(as_model(sa & sb), &ma & &mb);
        prop_assert_eq!(as_model(sa - sb), &ma - &mb);
        prop_assert_eq!(sa.len(), ma.len());
        prop_assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
    }
}

proptest! {
    // engine precomputation per case keeps this block slower than the
    // pure-function properties above; fewer cases, same coverage idea
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Session-interleaving-independence, randomized: N randomly sized
    /// streams of random dirty tuples (with random ground truths) over
    /// random rules and master data, multiplexed through one
    /// [`RepairService`] at 1, 2 and 4 workers — every session's
    /// outcomes and deterministic merged counts are bit-identical to
    /// draining that stream alone through a solo session, and the
    /// aggregate statistics equal the order-independent merge of the
    /// solo runs.
    #[test]
    fn multiplexed_sessions_match_solo_runs(
        (master_rows, specs, _, _) in arb_workload(),
        session_batches in proptest::collection::vec(
            proptest::collection::vec((arb_tuple(), arb_tuple()), 1..16), 2..5),
        batch in 1usize..6,
    ) {
        let Some((rules, _)) = build_rules(specs) else { return Ok(()); };
        let master = Arc::new(Relation::new(schema(), master_rows).unwrap());
        let dirty: Vec<Vec<Tuple>> = session_batches
            .iter()
            .map(|sb| sb.iter().map(|(d, _)| d.clone()).collect())
            .collect();
        let cleans: Vec<Vec<Tuple>> = session_batches
            .iter()
            .map(|sb| sb.iter().map(|(_, c)| c.clone()).collect())
            .collect();

        // solo baselines: each stream drained alone, sequentially
        let solo: Vec<_> = dirty
            .iter()
            .zip(&cleans)
            .map(|(d, c)| {
                let mut session = RepairSessionBuilder::new(rules.clone(), master.clone())
                    .threads(1)
                    .shared_cache(false)
                    .build();
                session.drain(SliceSource::with_batch(d, batch), |i| {
                    SimulatedUser::new(c[i].clone())
                });
                session.finish()
            })
            .collect();

        for workers in [1usize, 2, 4] {
            let service = RepairServiceBuilder::new(rules.clone(), master.clone())
                .threads(workers)
                .shared_cache(false)
                .build();
            let streams = dirty
                .iter()
                .zip(&cleans)
                .enumerate()
                .map(|(s, (d, c))| {
                    ServiceStream::new(
                        format!("s{s}"),
                        SliceSource::with_batch(d, batch),
                        move |i: usize| SimulatedUser::new(c[i].clone()),
                    )
                })
                .collect();
            let report = service.run(streams);
            prop_assert_eq!(report.sessions.len(), solo.len());
            let mut merged = MonitorStats::default();
            for (s, named) in report.sessions.iter().enumerate() {
                let (got, want) = (&named.report, &solo[s]);
                prop_assert_eq!(got.tuples, want.tuples);
                for (a, b) in got.outcomes().zip(want.outcomes()) {
                    prop_assert_eq!(&a.tuple, &b.tuple);
                    prop_assert_eq!(a.validated, b.validated);
                    prop_assert_eq!(a.certain, b.certain);
                    prop_assert_eq!(a.rounds.len(), b.rounds.len());
                }
                // the deterministic MonitorStats fields, bit-for-bit
                prop_assert_eq!(got.stats.tuples, want.stats.tuples);
                prop_assert_eq!(got.stats.certain, want.stats.certain);
                prop_assert_eq!(got.stats.rounds, want.stats.rounds);
                prop_assert_eq!(got.stats.plan_probes, want.stats.plan_probes);
                prop_assert_eq!(got.stats.plan_fallbacks, want.stats.plan_fallbacks);
                merged.merge(&got.stats);
            }
            prop_assert_eq!(report.stats.tuples, merged.tuples);
            prop_assert_eq!(report.stats.certain, merged.certain);
            prop_assert_eq!(report.stats.rounds, merged.rounds);
            prop_assert_eq!(report.stats.plan_probes, merged.plan_probes);
        }
    }

    /// The D10 contract, randomized: random rules and master data,
    /// with random insert/update/delete [`MasterDelta`] sequences
    /// interleaved between probe batches. The delta-maintained
    /// session — patched `KeyIndex` hit lists, re-keyed plans,
    /// generation-stamped epochs — is bit-identical (repaired tuples,
    /// certainty, validated sets, and the logical `plan_probes`
    /// count) to fresh engines built from scratch over each batch's
    /// pinned master state, at 1, 2, and 4 workers; generations on
    /// the batch reports never decrease and the merged report counts
    /// exactly one plan rebuild per applied delta.
    #[test]
    fn delta_maintained_sessions_match_rebuilt_masters(
        (master_rows, specs, _, _) in arb_workload(),
        phases in proptest::collection::vec(
            (
                proptest::collection::vec((arb_tuple(), arb_tuple()), 1..8),
                proptest::collection::vec((0u8..3, arb_tuple(), any::<u16>()), 0..4),
            ),
            1..4,
        ),
    ) {
        let Some((rules, _)) = build_rules(specs) else { return Ok(()); };
        let master = Arc::new(Relation::new(schema(), master_rows).unwrap());
        let cleans: Vec<Tuple> = phases
            .iter()
            .flat_map(|(b, _)| b.iter().map(|(_, c)| c.clone()))
            .collect();
        for workers in [1usize, 2, 4] {
            let mut session = RepairSessionBuilder::new(rules.clone(), master.clone())
                .threads(workers)
                .shared_cache(false)
                .build();
            // the master state each batch pins, captured just before the push
            let mut pinned: Vec<Arc<Relation>> = Vec::new();
            let mut applied = 0u64;
            let mut last_gen = 0u64;
            for (batch, ops) in &phases {
                pinned.push(session.engine().context().epoch().master().relation().clone());
                let dirty: Vec<Tuple> = batch.iter().map(|(d, _)| d.clone()).collect();
                let generation = session
                    .push_batch(&dirty, |i| SimulatedUser::new(cleans[i].clone()))
                    .generation;
                prop_assert!(generation >= last_gen);
                last_gen = generation;
                for (kind, t, r) in ops {
                    let rows = session.engine().context().epoch().master().relation().len() as u32;
                    let delta = match kind {
                        0 => MasterDelta::new().insert(t.clone()),
                        1 if rows > 0 => MasterDelta::new().update(*r as u32 % rows, t.clone()),
                        // never delete the last row: engines want a non-empty catalog
                        2 if rows > 1 => MasterDelta::new().delete(*r as u32 % rows),
                        _ => continue,
                    };
                    session.apply_master_delta(&delta).expect("delta applies");
                    applied += 1;
                }
            }
            let report = session.finish();
            prop_assert_eq!(report.stats.plan_rebuilds, applied);
            let mut offset = 0usize;
            for (k, ((batch, _), base)) in phases.iter().zip(&pinned).enumerate() {
                let dirty: Vec<Tuple> = batch.iter().map(|(d, _)| d.clone()).collect();
                let fresh =
                    BatchRepairEngine::new(RepairContext::new(rules.clone(), base.clone(), false));
                let opts = RepairOptions {
                    threads: 1,
                    shared_cache: false,
                    ..RepairOptions::default()
                };
                let want = fresh.repair_opts(&dirty, &opts, |i| {
                    SimulatedUser::new(cleans[offset + i].clone())
                });
                let got = &report.batches[k];
                prop_assert_eq!(got.outcomes.len(), want.outcomes.len());
                for (a, b) in got.outcomes.iter().zip(&want.outcomes) {
                    prop_assert_eq!(&a.tuple, &b.tuple);
                    prop_assert_eq!(a.certain, b.certain);
                    prop_assert_eq!(&a.validated, &b.validated);
                }
                prop_assert_eq!(got.stats.plan_probes, want.stats.plan_probes);
                offset += batch.len();
            }
        }
    }

    /// The D12 contract, randomized: random rules, master data, and
    /// insert/update/delete/fix-only-update [`MasterDelta`] sequences
    /// interleaved with probe batches. The shared suggestion cache is
    /// a pure performance layer — hygiene on (targeted eviction,
    /// clock at the caps, suggestion-preserving restamps), hygiene
    /// off (the historical insert-only pool behind the generation
    /// serve gate), and a cold cache (fresh engine per batch over the
    /// pinned master) all repair every tuple to the same final
    /// values, at 1, 2, and 4 workers. Certainty verdicts and
    /// validated sets carry D8's checked-reuse caveat — a pooled
    /// suggestion that passes the validity re-check can steer the
    /// interaction along a different (equally valid) trajectory than
    /// a fresh derivation — so they are compared only between the two
    /// hygiene modes at matching temperature, not against the cold
    /// engines (the `exp_delta` CI legs diff full outcome digests on
    /// the benchmark workloads, where canonical reuse holds).
    #[test]
    fn cache_hygiene_never_changes_outcomes(
        (master_rows, specs, _, _) in arb_workload(),
        phases in proptest::collection::vec(
            (
                proptest::collection::vec((arb_tuple(), arb_tuple()), 1..8),
                proptest::collection::vec((0u8..4, arb_tuple(), any::<u16>()), 0..4),
            ),
            1..4,
        ),
    ) {
        let Some((rules, _)) = build_rules(specs) else { return Ok(()); };
        let master = Arc::new(Relation::new(schema(), master_rows).unwrap());
        let cleans: Vec<Tuple> = phases
            .iter()
            .flat_map(|(b, _)| b.iter().map(|(_, c)| c.clone()))
            .collect();
        // the master attrs some rule probes as a key; updates that
        // avoid them are suggestion-preserving (the restamp path)
        let mut key_attrs = AttrSet::default();
        for (_, rule) in rules.iter() {
            key_attrs |= AttrSet::collect_from(rule.lhs_m().iter().copied());
            for &a in rule.lhs_p() {
                if let Some(m) = rule.master_attr_for(a) {
                    key_attrs.insert(m);
                }
            }
        }
        let fix_attr = (0..ATTRS as u16)
            .map(AttrId)
            .find(|a| !key_attrs.contains(*a));
        for workers in [1usize, 2, 4] {
            // one warm session per hygiene mode over the same stream
            let mut runs = Vec::new();
            for hygiene in [true, false] {
                let mut session = RepairSessionBuilder::new(rules.clone(), master.clone())
                    .threads(workers)
                    .shared_cache(true)
                    .cache_hygiene(hygiene)
                    .build();
                let mut pinned: Vec<Arc<Relation>> = Vec::new();
                for (batch, ops) in &phases {
                    pinned.push(session.engine().context().epoch().master().relation().clone());
                    let dirty: Vec<Tuple> = batch.iter().map(|(d, _)| d.clone()).collect();
                    session.push_batch(&dirty, |i| SimulatedUser::new(cleans[i].clone()));
                    for (kind, t, r) in ops {
                        let rel = session.engine().context().epoch().master().relation().clone();
                        let rows = rel.len() as u32;
                        let delta = match kind {
                            0 => MasterDelta::new().insert(t.clone()),
                            1 if rows > 0 => MasterDelta::new().update(*r as u32 % rows, t.clone()),
                            2 if rows > 1 => MasterDelta::new().delete(*r as u32 % rows),
                            // fix-column-only update: change one
                            // non-key attr, keep the rest of the row
                            3 if rows > 0 && fix_attr.is_some() => {
                                let fa = fix_attr.unwrap();
                                let row = *r as u32 % rows;
                                let new = Tuple::new(
                                    rel.tuples()[row as usize]
                                        .iter()
                                        .map(|(a, v)| if a == fa { *t.get(fa) } else { *v })
                                        .collect(),
                                );
                                MasterDelta::new().update(row, new)
                            }
                            _ => continue,
                        };
                        session.apply_master_delta(&delta).expect("delta applies");
                    }
                }
                runs.push((pinned, session.finish()));
            }
            let (pinned, on) = &runs[0];
            let (_, off) = &runs[1];
            // hygiene on ≡ hygiene off, batch by batch
            prop_assert_eq!(on.batches.len(), off.batches.len());
            for (a, b) in on.batches.iter().zip(&off.batches) {
                prop_assert_eq!(a.outcomes.len(), b.outcomes.len());
                for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
                    prop_assert_eq!(&x.tuple, &y.tuple);
                    prop_assert_eq!(x.certain, y.certain);
                    prop_assert_eq!(&x.validated, &y.validated);
                }
            }
            // ≡ a cold cache: a fresh engine (empty pool) per batch
            // over the master state that batch pinned
            let mut offset = 0usize;
            for (k, ((batch, _), base)) in phases.iter().zip(pinned).enumerate() {
                let dirty: Vec<Tuple> = batch.iter().map(|(d, _)| d.clone()).collect();
                let fresh =
                    BatchRepairEngine::new(RepairContext::new(rules.clone(), base.clone(), false));
                let opts = RepairOptions {
                    threads: 1,
                    shared_cache: true,
                    ..RepairOptions::default()
                };
                let want = fresh.repair_opts(&dirty, &opts, |i| {
                    SimulatedUser::new(cleans[offset + i].clone())
                });
                let got = &on.batches[k];
                prop_assert_eq!(got.outcomes.len(), want.outcomes.len());
                for (a, b) in got.outcomes.iter().zip(&want.outcomes) {
                    prop_assert_eq!(&a.tuple, &b.tuple);
                }
                offset += batch.len();
            }
        }
    }
}
